"""Feed registry: instantiate and namespace many GRuB feeds on one chain.

The registry is the tenant-management layer of the gateway.  Each
:class:`FeedSpec` describes one tenant (its id, its
:class:`~repro.core.config.GrubConfig` — decision algorithm, epoch size,
record sizing — and an optional preload).  ``create_feed`` wires a complete
GRuB deployment for the tenant — storage-manager contract, consumer contract,
data owner, storage provider — with every address namespaced under the feed
id, sharing the registry's single :class:`~repro.chain.chain.Blockchain`,
:class:`GatewayRouterContract` and :class:`SharedWatchdog`.

All gas a feed causes is billed to the feed's gas scope (its id), which is
what makes per-tenant telemetry exact even when several feeds share one
batched transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.chain.chain import Blockchain, ChainParameters
from repro.chain.gas import GasSchedule
from repro.common.errors import ConfigurationError
from repro.common.types import KVRecord
from repro.core.config import GrubConfig
from repro.core.grub import GrubSystem, RunReport
from repro.gateway.router import GatewayRouterContract
from repro.gateway.watchdog import SharedWatchdog
from repro.storage.kvstore import KVStore
from repro.storage.lsm import LSMStore

#: SP-store backends a :class:`FeedSpec` may select.
STORE_BACKENDS = ("memory", "lsm")


@dataclass(frozen=True)
class FeedSpec:
    """Everything the gateway needs to host one tenant feed."""

    feed_id: str
    config: GrubConfig = field(default_factory=GrubConfig)
    preload: Optional[Sequence[KVRecord]] = None
    #: Optional factory building the feed's consumer contract from the storage
    #: manager's address (defaults to the plain DataConsumerContract).
    consumer_factory: Optional[object] = None
    #: Per-tenant quota: at most this many workload operations are driven per
    #: epoch; the excess is deferred to later epochs (``None`` = unlimited).
    max_ops_per_epoch: Optional[int] = None
    #: Per-tenant quota: once the feed's driving-phase gas for an epoch
    #: reaches this amount, its remaining operations are deferred to later
    #: epochs (``None`` = unlimited).  At least one operation always executes
    #: per epoch, so a quota can throttle a tenant but never wedge it.
    max_gas_per_epoch: Optional[int] = None
    #: Backend of the feed's service-provider store: ``"memory"`` (default,
    #: the dict-backed :class:`~repro.storage.kvstore.InMemoryKVStore`) or
    #: ``"lsm"`` (an :class:`~repro.storage.lsm.LSMStore`; with
    #: ``store_directory`` set, a persistent one whose SSTables and WAL
    #: survive a gateway restart).
    store_backend: str = "memory"
    #: Directory for a persistent ``"lsm"`` store.  Must be private to this
    #: feed (two feeds sharing a directory would interleave their WALs);
    #: ``None`` keeps the LSM purely in memory.
    store_directory: Optional[Union[str, Path]] = None

    def __post_init__(self) -> None:
        if not self.feed_id or "/" in self.feed_id:
            raise ConfigurationError(
                f"feed id must be a non-empty string without '/', got {self.feed_id!r}"
            )
        if self.max_ops_per_epoch is not None and self.max_ops_per_epoch <= 0:
            raise ConfigurationError("max_ops_per_epoch must be positive when given")
        if self.max_gas_per_epoch is not None and self.max_gas_per_epoch <= 0:
            raise ConfigurationError("max_gas_per_epoch must be positive when given")
        if self.store_backend not in STORE_BACKENDS:
            raise ConfigurationError(
                f"unknown store_backend {self.store_backend!r}; "
                f"expected one of {STORE_BACKENDS}"
            )
        if self.store_directory is not None and self.store_backend != "lsm":
            raise ConfigurationError(
                "store_directory only applies to the 'lsm' store backend"
            )

    def build_store_backing(self) -> Optional[KVStore]:
        """The SP-store backing this spec selects (``None`` = the default).

        Directory-backed LSM stores open *exclusively*: a feed's directory has
        exactly one live opener, which is what makes migrating the feed
        between process lanes safe — the source side must ``close()`` before
        the destination side opens the same directory.
        """
        if self.store_backend == "memory":
            return None
        directory = Path(self.store_directory) if self.store_directory is not None else None
        return LSMStore(directory=directory, exclusive=True)


@dataclass
class FeedHandle:
    """One hosted feed: its wired GRuB system plus per-feed run state."""

    spec: FeedSpec
    system: GrubSystem
    report: RunReport

    @property
    def feed_id(self) -> str:
        return self.spec.feed_id

    @property
    def storage_manager(self):
        return self.system.storage_manager

    @property
    def service_provider(self):
        return self.system.service_provider

    @property
    def data_owner(self):
        return self.system.data_owner

    @property
    def consumer(self):
        return self.system.consumer

    @property
    def replicated_on_chain(self) -> int:
        return self.system.replicated_on_chain


class FeedRegistry:
    """Hosts many independent GRuB feeds over one shared chain and watchdog."""

    def __init__(
        self,
        *,
        schedule: Optional[GasSchedule] = None,
        parameters: Optional[ChainParameters] = None,
        router_address: str = "gateway-router",
    ) -> None:
        self.schedule = schedule or GasSchedule()
        self.parameters = parameters or ChainParameters()
        self.chain = Blockchain(schedule=self.schedule, parameters=self.parameters)
        self.router = GatewayRouterContract(router_address)
        self.chain.deploy(self.router)
        self.watchdog = SharedWatchdog(chain=self.chain)
        self._feeds: Dict[str, FeedHandle] = {}
        #: Callables invoked with the feed id when a feed is removed (the
        #: scheduler hooks cache invalidation in here).
        self.removal_listeners: List[Callable[[str], None]] = []

    # -- tenant lifecycle ----------------------------------------------------

    def create_feed(self, spec: FeedSpec) -> FeedHandle:
        """Instantiate and register a new hosted feed."""
        if spec.feed_id in self._feeds:
            raise ConfigurationError(f"feed {spec.feed_id!r} already registered")
        system = GrubSystem(
            spec.config,
            consumer_factory=spec.consumer_factory,
            preload=spec.preload,
            chain=self.chain,
            feed_id=spec.feed_id,
            gateway=self.router.address,
            sp_store_backing=spec.build_store_backing(),
        )
        handle = FeedHandle(
            spec=spec,
            system=system,
            report=RunReport(system_name=f"GRuB[{spec.feed_id}]"),
        )
        self._feeds[spec.feed_id] = handle
        self.watchdog.register(handle)
        return handle

    def remove_feed(self, feed_id: str) -> FeedHandle:
        """Deregister a feed: stop scheduling/billing it and free its
        on-chain addresses (so the feed id can be reused by a later tenant)."""
        handle = self.get(feed_id)
        del self._feeds[feed_id]
        self.watchdog.deregister(handle)
        self.chain.undeploy(handle.storage_manager.address)
        self.chain.undeploy(handle.consumer.address)
        for listener in self.removal_listeners:
            listener(feed_id)
        return handle

    # -- lookup --------------------------------------------------------------

    def get(self, feed_id: str) -> FeedHandle:
        try:
            return self._feeds[feed_id]
        except KeyError as exc:
            raise ConfigurationError(f"no feed registered as {feed_id!r}") from exc

    def __contains__(self, feed_id: str) -> bool:
        return feed_id in self._feeds

    def __len__(self) -> int:
        return len(self._feeds)

    @property
    def feed_ids(self) -> List[str]:
        """Registered feed ids in creation order."""
        return list(self._feeds)

    @property
    def handles(self) -> List[FeedHandle]:
        return list(self._feeds.values())
