"""The gateway's on-chain router: one transaction, many feeds.

In a single-feed deployment every end-of-epoch transaction (the SP's
``deliver``, the DO's ``update``) pays the full 21k transaction base cost for
one feed.  The router is the on-chain half of the multi-tenant gateway: it
accepts *batched* transactions whose calldata is grouped per feed and fans
each group out to that feed's storage-manager contract with an internal call,
so N feeds sharing an epoch boundary pay one base cost instead of N.

Gas attribution stays exact: the chain splits the batched transaction's
intrinsic cost across the feeds it serves (see
:func:`repro.chain.gas.split_transaction_cost`) and the router executes each
group under the feed's own gas scope, so per-feed reports add up to the fleet
total with no double-counting.

Authorisation mirrors the single-feed contract: each storage manager still
verifies delivered records against its own root hash, and ``update`` groups
are only accepted because the hosted feeds name the router as their gateway
(the gateway operates the DOs, so it is their on-chain agent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.chain.contract import Contract
from repro.chain.vm import ExecutionContext
from repro.core.storage_manager import DeliverItem, UpdateEntry


@dataclass(frozen=True)
class DeliverGroup:
    """One feed's slice of a batched cross-feed ``deliver`` transaction."""

    feed_id: str
    manager: str
    items: List[DeliverItem]

    @property
    def calldata_bytes(self) -> int:
        # Manager address word + the items' encoded size.
        return 32 + sum(item.calldata_bytes for item in self.items)


@dataclass(frozen=True)
class UpdateGroup:
    """One feed's slice of a batched cross-feed ``update`` transaction."""

    feed_id: str
    manager: str
    entries: List[UpdateEntry]
    digest: bytes

    @property
    def calldata_bytes(self) -> int:
        # Manager address word + digest (2 words) + the entries' encoded size.
        return 32 + 64 + sum(entry.calldata_bytes for entry in self.entries)


class GatewayRouterContract(Contract):
    """Fans batched gateway transactions out to per-feed storage managers."""

    def __init__(self, address: str = "gateway-router") -> None:
        super().__init__(address)
        self.deliver_batches = 0
        self.update_batches = 0
        self.groups_routed = 0

    def deliver_batch(self, ctx: ExecutionContext, groups: List[DeliverGroup]) -> int:
        """Answer outstanding requests of several feeds in one transaction.

        Each group is executed under its feed's gas scope; the per-feed
        storage manager performs the usual Merkle verification, optional
        replication and consumer callbacks.
        """
        self.require(bool(groups), "empty deliver batch")
        verified = 0
        for group in groups:
            manager = self.chain.get_contract(group.manager)
            verified += self.call_contract(
                ctx,
                manager,
                "deliver",
                scope=group.feed_id,
                items=group.items,
            )
            self.groups_routed += 1
        self.deliver_batches += 1
        return verified

    def update_batch(self, ctx: ExecutionContext, groups: List[UpdateGroup]) -> int:
        """Land several feeds' epoch updates in one transaction.

        The storage managers accept the router as sender because the hosted
        feeds were deployed with this router as their ``gateway``.
        """
        self.require(bool(groups), "empty update batch")
        applied = 0
        for group in groups:
            manager = self.chain.get_contract(group.manager)
            applied += self.call_contract(
                ctx,
                manager,
                "update",
                scope=group.feed_id,
                entries=group.entries,
                digest=group.digest,
            )
            self.groups_routed += 1
        self.update_batches += 1
        return applied


def scope_weights_for_deliver(groups: List[DeliverGroup]) -> Dict[str, int]:
    """Per-feed calldata weights used to split a deliver batch's base cost."""
    return {group.feed_id: group.calldata_bytes for group in groups}


def scope_weights_for_update(groups: List[UpdateGroup]) -> Dict[str, int]:
    """Per-feed calldata weights used to split an update batch's base cost."""
    return {group.feed_id: group.calldata_bytes for group in groups}
