"""Plain-text reporting helpers for experiments and benchmarks.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that formatting in one place so every benchmark output looks the
same and EXPERIMENTS.md can be assembled from it.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence


def _cell(value: object) -> str:
    """Render one table cell (floats get a compact fixed precision)."""
    if isinstance(value, float):
        return f"{value:,.1f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a simple fixed-width table."""
    materialised: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    name: str,
    values: Sequence[float],
    *,
    precision: int = 1,
    max_points: int = 64,
) -> str:
    """Render a numeric series compactly (down-sampled when very long)."""
    if len(values) > max_points:
        step = len(values) / max_points
        sampled = [values[int(i * step)] for i in range(max_points)]
    else:
        sampled = list(values)
    formatted = ", ".join(f"{value:.{precision}f}" for value in sampled)
    return f"{name} [{len(values)} points]: {formatted}"


def percent_difference(value: float, baseline: float) -> float:
    """``(value - baseline) / baseline`` in percent (0 when baseline is 0)."""
    if baseline == 0:
        return 0.0
    return (value - baseline) / baseline * 100.0


def format_percent(value: float, baseline: float) -> str:
    """Render a value with its percentage difference from a baseline."""
    delta = percent_difference(value, baseline)
    sign = "+" if delta >= 0 else ""
    return f"{value:,.0f} ({sign}{delta:.1f}%)"


def format_gas(value: float) -> str:
    """Human-readable gas amount (uses the paper's M suffix for millions)."""
    if value >= 1_000_000:
        return f"{value / 1_000_000:.1f}M"
    if value >= 1_000:
        return f"{value / 1_000:.1f}k"
    return f"{value:.0f}"


def format_rate(value: float, unit: str) -> str:
    """Render a throughput figure (``12.3k ops/s`` style, SI-suffixed)."""
    if value >= 1_000_000:
        return f"{value / 1_000_000:.1f}M {unit}"
    if value >= 1_000:
        return f"{value / 1_000:.1f}k {unit}"
    return f"{value:,.1f} {unit}"


def format_distribution(distribution: Mapping[int, float], title: str) -> str:
    """Render a reads-per-write distribution like the paper's Tables 1 and 6."""
    rows = [(count, f"{fraction * 100:.2f}%") for count, fraction in sorted(distribution.items())]
    return format_table(["#r", "Percentage"], rows, title=title)
