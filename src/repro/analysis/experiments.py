"""Experiment runners: one function per table/figure of the paper's evaluation.

Each runner builds the systems under comparison (GRuB plus the relevant
baselines), drives the corresponding workload, and returns a structured result
object.  Benchmarks call these runners and print the rows/series the paper
reports; tests assert the *shape* properties (who wins, where the crossover
falls) rather than absolute gas values.

Every runner accepts an :class:`ExperimentScale` so the same code can run the
paper's full parameters (slow) or a scaled-down configuration (the default for
benchmarks and CI) without changing the experiment logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.gateway.metrics import FleetTelemetry

from repro.common.types import KVRecord, Operation, ReplicationState
from repro.core.baselines import (
    AlwaysReplicateSystem,
    NoReplicationSystem,
    OnChainReadTraceSystem,
    OnChainTraceSystem,
)
from repro.core.config import GrubConfig
from repro.core.grub import GrubSystem, RunReport
from repro.workloads.btcrelay_trace import BtcRelayTrace
from repro.workloads.eth_price_oracle import EthPriceOracleTrace
from repro.workloads.operations import WorkloadStats, characterise
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.ycsb import MixedYCSBWorkload


@dataclass(frozen=True)
class ExperimentScale:
    """Scaling knobs shared by all experiment runners.

    ``paper()`` returns the parameters used in the paper; ``default()`` is a
    laptop-scale configuration that preserves every shape while keeping each
    experiment under a few seconds.
    """

    synthetic_operations: int = 512
    epoch_size: int = 32
    eth_price_writes: int = 790
    eth_price_store_records: int = 256
    eth_price_assets_per_update: int = 10
    btcrelay_blocks: int = 204
    btcrelay_epoch_size: int = 4
    ycsb_record_count: int = 2048
    ycsb_operations_per_phase: int = 1024
    ycsb_record_size_bytes: int = 256

    @classmethod
    def default(cls) -> "ExperimentScale":
        return cls()

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """Very small configuration for unit tests."""
        return cls(
            synthetic_operations=128,
            eth_price_writes=120,
            eth_price_store_records=64,
            eth_price_assets_per_update=4,
            btcrelay_blocks=60,
            ycsb_record_count=256,
            ycsb_operations_per_phase=128,
            ycsb_record_size_bytes=64,
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        return cls(
            synthetic_operations=2048,
            eth_price_writes=790,
            eth_price_store_records=4096,
            eth_price_assets_per_update=10,
            btcrelay_blocks=204,
            ycsb_record_count=65536,
            ycsb_operations_per_phase=4096,
            ycsb_record_size_bytes=1024,
        )


# ---------------------------------------------------------------------------
# Figures 3 and 7: per-operation gas versus read/write ratio
# ---------------------------------------------------------------------------


@dataclass
class RatioSweepResult:
    """Per-ratio per-operation gas for each system (Figures 3 and 7)."""

    ratios: List[float]
    gas_per_operation: Dict[str, List[float]]
    crossover_ratio: Optional[float] = None

    def series(self, system: str) -> List[float]:
        return self.gas_per_operation[system]

    def rows(self) -> List[Tuple[object, ...]]:
        systems = list(self.gas_per_operation)
        rows = []
        for index, ratio in enumerate(self.ratios):
            rows.append(
                (ratio, *[round(self.gas_per_operation[s][index]) for s in systems])
            )
        return rows


DEFAULT_RATIOS = (0.0, 0.125, 0.5, 1.0, 2.0, 4.0, 16.0, 64.0, 256.0)


def run_ratio_sweep(
    ratios: Sequence[float] = DEFAULT_RATIOS,
    *,
    scale: Optional[ExperimentScale] = None,
    record_size_bytes: int = 32,
    include_dynamic_baselines: bool = False,
    grub_algorithm: str = "memoryless",
    num_keys: int = 4,
) -> RatioSweepResult:
    """Figure 3 (static baselines only) and Figure 7 (plus BL3/BL4 and GRuB)."""
    scale = scale or ExperimentScale.default()
    systems: Dict[str, type] = {"BL1": NoReplicationSystem, "BL2": AlwaysReplicateSystem}
    if include_dynamic_baselines:
        systems["BL3"] = OnChainTraceSystem
        systems["BL4"] = OnChainReadTraceSystem
    systems["GRuB"] = GrubSystem

    results: Dict[str, List[float]] = {name: [] for name in systems}
    for ratio in ratios:
        workload = SyntheticWorkload(
            read_write_ratio=ratio,
            num_operations=scale.synthetic_operations,
            num_keys=num_keys,
            record_size_bytes=record_size_bytes,
        )
        operations = workload.operations()
        for name, cls in systems.items():
            config = GrubConfig(
                epoch_size=scale.epoch_size,
                record_size_bytes=record_size_bytes,
                algorithm=grub_algorithm if name in ("GRuB", "BL3", "BL4") else "memoryless",
            )
            system = cls(config)
            report = system.run(operations)
            results[name].append(report.gas_per_operation)

    crossover = _find_crossover(list(ratios), results.get("BL1", []), results.get("BL2", []))
    return RatioSweepResult(
        ratios=list(ratios), gas_per_operation=results, crossover_ratio=crossover
    )


def _find_crossover(
    ratios: List[float], series_a: List[float], series_b: List[float]
) -> Optional[float]:
    """Ratio where series A stops being cheaper than series B (linear interpolation)."""
    for index in range(1, len(ratios)):
        prev_diff = series_a[index - 1] - series_b[index - 1]
        curr_diff = series_a[index] - series_b[index]
        if prev_diff == 0:
            return ratios[index - 1]
        if prev_diff < 0 <= curr_diff or prev_diff > 0 >= curr_diff:
            span = curr_diff - prev_diff
            if span == 0:
                return ratios[index]
            fraction = -prev_diff / span
            return ratios[index - 1] + fraction * (ratios[index] - ratios[index - 1])
    return None


# ---------------------------------------------------------------------------
# Figure 5 / Table 3: ethPriceOracle trace with the stablecoin application
# ---------------------------------------------------------------------------


@dataclass
class TraceExperimentResult:
    """GRuB versus the static baselines under one recorded trace."""

    reports: Dict[str, RunReport]
    epoch_series: Dict[str, List[float]]
    application_gas: Dict[str, int] = field(default_factory=dict)

    def feed_gas(self, system: str) -> int:
        return self.reports[system].gas_feed

    def overhead_versus_grub(self, system: str) -> float:
        grub = self.reports["GRuB"].gas_feed
        if grub == 0:
            return 0.0
        return (self.reports[system].gas_feed - grub) / grub * 100.0


def run_eth_price_oracle_experiment(
    *,
    scale: Optional[ExperimentScale] = None,
    with_stablecoin: bool = True,
    grub_algorithm: str = "memoryless",
    grub_k: int = 1,
    read_fanout: int = 10,
) -> TraceExperimentResult:
    """Figure 5 and Table 3: GRuB vs BL1/BL2 under the ethPriceOracle workload."""
    scale = scale or ExperimentScale.default()
    trace = EthPriceOracleTrace(
        num_writes=scale.eth_price_writes,
        assets_per_update=scale.eth_price_assets_per_update,
        num_assets=scale.eth_price_store_records,
        read_fanout=read_fanout,
        hot_assets=2,
    )
    operations = trace.operations()
    preload = [
        KVRecord.make(trace.asset_key(index), b"\x00" * 32, ReplicationState.NOT_REPLICATED)
        for index in range(scale.eth_price_store_records)
    ]

    reports: Dict[str, RunReport] = {}
    application_gas: Dict[str, int] = {}
    for name, cls, algorithm in (
        ("BL1", NoReplicationSystem, "never"),
        ("BL2", AlwaysReplicateSystem, "always"),
        ("GRuB", GrubSystem, grub_algorithm),
    ):
        config = GrubConfig(
            epoch_size=scale.epoch_size,
            record_size_bytes=32,
            algorithm=algorithm,
            k=grub_k if name == "GRuB" else None,
        )
        system = cls(config, preload=preload)
        if with_stablecoin:
            from repro.apps.stablecoin import build_stablecoin_deployment

            build_stablecoin_deployment(system)
        report = system.run(operations)
        reports[name] = report
        application_gas[name] = report.gas_application
    return TraceExperimentResult(
        reports=reports,
        epoch_series={name: report.epoch_series() for name, report in reports.items()},
        application_gas=application_gas,
    )


# ---------------------------------------------------------------------------
# Figure 6: BtcRelay trace
# ---------------------------------------------------------------------------


def run_btcrelay_experiment(
    *,
    scale: Optional[ExperimentScale] = None,
    grub_k: int = 2,
    evict_after_epochs: int = 8,
) -> TraceExperimentResult:
    """Figure 6: GRuB vs BL1/BL2 under the BtcRelay block-read workload."""
    scale = scale or ExperimentScale.default()
    trace = BtcRelayTrace(num_blocks=scale.btcrelay_blocks)
    operations = trace.operations()

    reports: Dict[str, RunReport] = {}
    for name, cls, algorithm in (
        ("BL1", NoReplicationSystem, "never"),
        ("BL2", AlwaysReplicateSystem, "always"),
        ("GRuB", GrubSystem, "memorizing"),
    ):
        config = GrubConfig(
            epoch_size=scale.btcrelay_epoch_size,
            record_size_bytes=96,
            algorithm=algorithm,
            k=grub_k,
            k_prime=grub_k,
            reuse_replica_slots=name == "GRuB",
            continuous_decisions=name == "GRuB",
            evict_unused_after_epochs=evict_after_epochs if name == "GRuB" else None,
        )
        system = cls(config)
        reports[name] = system.run(operations)
    return TraceExperimentResult(
        reports=reports,
        epoch_series={name: report.epoch_series() for name, report in reports.items()},
    )


# ---------------------------------------------------------------------------
# Figures 9, 13, 14 / Table 4: YCSB macro-benchmarks
# ---------------------------------------------------------------------------


def run_ycsb_experiment(
    phases: Sequence[str] = ("A", "B", "A", "B"),
    *,
    scale: Optional[ExperimentScale] = None,
    record_size_bytes: Optional[int] = None,
    grub_algorithm: str = "memoryless",
    grub_k: Optional[int] = None,
) -> TraceExperimentResult:
    """Figure 9 / 13 and Table 4: GRuB vs baselines under mixed YCSB workloads."""
    scale = scale or ExperimentScale.default()
    record_size = record_size_bytes or scale.ycsb_record_size_bytes
    workload = MixedYCSBWorkload(
        phases=phases,
        record_count=scale.ycsb_record_count,
        record_size_bytes=record_size,
        operations_per_phase=scale.ycsb_operations_per_phase,
    )
    operations = workload.operations()
    markers = workload.phase_markers()

    reports: Dict[str, RunReport] = {}
    for name, cls, algorithm in (
        ("BL1", NoReplicationSystem, "never"),
        ("BL2", AlwaysReplicateSystem, "always"),
        ("GRuB", GrubSystem, grub_algorithm),
    ):
        config = GrubConfig(
            epoch_size=scale.epoch_size,
            record_size_bytes=record_size,
            algorithm=algorithm,
            k=grub_k if name == "GRuB" else None,
        )
        system = cls(config, preload=workload.preload_records())
        reports[name] = system.run(operations, phase_markers=markers)
    return TraceExperimentResult(
        reports=reports,
        epoch_series={name: report.epoch_series() for name, report in reports.items()},
    )


# ---------------------------------------------------------------------------
# Figure 8a: memoryless vs memorizing vs offline optimal
# ---------------------------------------------------------------------------


@dataclass
class AlgorithmComparisonResult:
    """Per-epoch gas of each decision algorithm over the same workload."""

    epoch_series: Dict[str, List[float]]
    totals: Dict[str, int]


def run_algorithm_comparison(
    *,
    k: int = 8,
    window_d: int = 1,
    scale: Optional[ExperimentScale] = None,
    num_keys: int = 4,
) -> AlgorithmComparisonResult:
    """Figure 8a: the workload of ratio K+1 that separates the two algorithms."""
    scale = scale or ExperimentScale.default()
    workload = SyntheticWorkload(
        read_write_ratio=k + 1,
        num_operations=scale.synthetic_operations,
        num_keys=num_keys,
        record_size_bytes=32,
    )
    operations = workload.operations()

    epoch_series: Dict[str, List[float]] = {}
    totals: Dict[str, int] = {}
    configs = {
        "memoryless": GrubConfig(epoch_size=scale.epoch_size, algorithm="memoryless", k=k),
        "memorizing": GrubConfig(
            epoch_size=scale.epoch_size, algorithm="memorizing", k_prime=k, window_d=window_d
        ),
        "offline": GrubConfig(epoch_size=scale.epoch_size, algorithm="memoryless", k=k),
    }
    for name, config in configs.items():
        system = GrubSystem(config)
        if name == "offline":
            system.set_future_trace(operations)
        report = system.run(operations)
        epoch_series[name] = report.epoch_series()
        totals[name] = report.gas_feed
    return AlgorithmComparisonResult(epoch_series=epoch_series, totals=totals)


# ---------------------------------------------------------------------------
# Figure 8b: record size sweep
# ---------------------------------------------------------------------------


@dataclass
class RecordSizeSweepResult:
    record_sizes_words: List[int]
    gas_per_operation: Dict[str, List[float]]


def run_record_size_sweep(
    record_sizes_words: Sequence[int] = (1, 2, 4, 8, 16),
    *,
    read_write_ratio: float = 2.0,
    scale: Optional[ExperimentScale] = None,
) -> RecordSizeSweepResult:
    """Figure 8b: per-operation gas versus record size for BL1, BL2 and GRuB."""
    scale = scale or ExperimentScale.default()
    results: Dict[str, List[float]] = {"BL1": [], "BL2": [], "GRuB": []}
    for words in record_sizes_words:
        size_bytes = words * 32
        workload = SyntheticWorkload(
            read_write_ratio=read_write_ratio,
            num_operations=scale.synthetic_operations,
            num_keys=4,
            record_size_bytes=size_bytes,
        )
        operations = workload.operations()
        for name, cls in (
            ("BL1", NoReplicationSystem),
            ("BL2", AlwaysReplicateSystem),
            ("GRuB", GrubSystem),
        ):
            config = GrubConfig(epoch_size=scale.epoch_size, record_size_bytes=size_bytes)
            report = cls(config).run(operations)
            results[name].append(report.gas_per_operation)
    return RecordSizeSweepResult(
        record_sizes_words=list(record_sizes_words), gas_per_operation=results
    )


# ---------------------------------------------------------------------------
# Figures 11 and 14: parameter K sweeps
# ---------------------------------------------------------------------------


@dataclass
class ParameterKSweepResult:
    k_values: List[float]
    gas_per_operation: Dict[str, List[float]]
    baselines: Dict[str, float] = field(default_factory=dict)


def run_parameter_k_sweep(
    k_values: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    ratios: Sequence[float] = (2.0, 4.0, 8.0),
    *,
    scale: Optional[ExperimentScale] = None,
) -> ParameterKSweepResult:
    """Figure 11: memoryless GRuB's gas versus K for several read/write ratios."""
    scale = scale or ExperimentScale.default()
    results: Dict[str, List[float]] = {}
    for ratio in ratios:
        label = f"ratio={ratio:g}"
        results[label] = []
        workload = SyntheticWorkload(
            read_write_ratio=ratio,
            num_operations=scale.synthetic_operations,
            num_keys=4,
            record_size_bytes=32,
        )
        operations = workload.operations()
        for k in k_values:
            config = GrubConfig(epoch_size=scale.epoch_size, algorithm="memoryless", k=int(k))
            report = GrubSystem(config).run(operations)
            results[label].append(report.gas_per_operation)
    return ParameterKSweepResult(k_values=[float(k) for k in k_values], gas_per_operation=results)


def run_ycsb_parameter_k_sweep(
    k_values: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    phases: Sequence[str] = ("A", "B", "A", "B"),
    *,
    scale: Optional[ExperimentScale] = None,
) -> ParameterKSweepResult:
    """Figure 14: GRuB's gas versus K under the mixed YCSB workload, with baselines."""
    scale = scale or ExperimentScale.default()
    workload = MixedYCSBWorkload(
        phases=phases,
        record_count=scale.ycsb_record_count,
        record_size_bytes=scale.ycsb_record_size_bytes,
        operations_per_phase=scale.ycsb_operations_per_phase,
    )
    operations = workload.operations()
    preload = workload.preload_records()

    baselines: Dict[str, float] = {}
    for name, cls in (("BL1", NoReplicationSystem), ("BL2", AlwaysReplicateSystem)):
        config = GrubConfig(
            epoch_size=scale.epoch_size, record_size_bytes=scale.ycsb_record_size_bytes
        )
        baselines[name] = cls(config, preload=list(preload)).run(operations).gas_per_operation

    series: List[float] = []
    for k in k_values:
        config = GrubConfig(
            epoch_size=scale.epoch_size,
            record_size_bytes=scale.ycsb_record_size_bytes,
            algorithm="memoryless",
            k=int(k),
        )
        report = GrubSystem(config, preload=list(preload)).run(operations)
        series.append(report.gas_per_operation)
    return ParameterKSweepResult(
        k_values=[float(k) for k in k_values],
        gas_per_operation={"GRuB": series},
        baselines=baselines,
    )


# ---------------------------------------------------------------------------
# Figure 12: threshold read/write ratio versus record size and data size
# ---------------------------------------------------------------------------


@dataclass
class ThresholdRatioResult:
    by_record_size: Dict[int, Optional[float]]
    by_data_size: Dict[int, Optional[float]]


def run_threshold_ratio_experiment(
    record_sizes_bytes: Sequence[int] = (32, 512, 4096),
    data_sizes: Sequence[int] = (256, 4096, 65536),
    *,
    ratios: Sequence[float] = (0.125, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0),
    scale: Optional[ExperimentScale] = None,
) -> ThresholdRatioResult:
    """Figure 12: where the BL1/BL2 crossover falls as record and data size vary."""
    scale = scale or ExperimentScale.default()

    def crossover_for(record_size: int, data_size: int) -> Optional[float]:
        """BL1/BL2 crossover ratio; the largest tested ratio is reported as a
        lower bound when the curves do not cross within the grid."""
        preload = [
            KVRecord.make(f"key-{index:08d}", b"\x00" * record_size)
            for index in range(data_size)
        ]
        series: Dict[str, List[float]] = {"BL1": [], "BL2": []}
        for ratio in ratios:
            workload = SyntheticWorkload(
                read_write_ratio=ratio,
                num_operations=scale.synthetic_operations // 2,
                num_keys=min(4, data_size),
                record_size_bytes=record_size,
                key_prefix="key",
            )
            operations = workload.operations()
            for name, cls in (("BL1", NoReplicationSystem), ("BL2", AlwaysReplicateSystem)):
                config = GrubConfig(epoch_size=scale.epoch_size, record_size_bytes=record_size)
                report = cls(config, preload=list(preload)).run(operations)
                series[name].append(report.gas_per_operation)
        crossover = _find_crossover(list(ratios), series["BL1"], series["BL2"])
        return crossover if crossover is not None else float(max(ratios))

    by_record_size = {
        size: crossover_for(size, data_sizes[0]) for size in record_sizes_bytes
    }
    by_data_size = {
        size: crossover_for(record_sizes_bytes[0], size) for size in data_sizes
    }
    return ThresholdRatioResult(by_record_size=by_record_size, by_data_size=by_data_size)


# ---------------------------------------------------------------------------
# Figure 15 / Table 5: adaptive-K policies
# ---------------------------------------------------------------------------


@dataclass
class AdaptiveKResult:
    totals: Dict[str, int]
    epoch_series: Dict[str, List[float]]

    def relative_to_static(self, policy: str) -> float:
        static = self.totals["static"]
        if static == 0:
            return 0.0
        return (self.totals[policy] - static) / static * 100.0


def run_adaptive_k_experiment(
    *,
    scale: Optional[ExperimentScale] = None,
    static_k: int = 1,
) -> AdaptiveKResult:
    """Figure 15 / Table 5: static K vs adaptive policies K1 and K2 on ethPriceOracle."""
    scale = scale or ExperimentScale.default()
    trace = EthPriceOracleTrace(
        num_writes=scale.eth_price_writes,
        assets_per_update=scale.eth_price_assets_per_update,
        num_assets=scale.eth_price_store_records,
    )
    operations = trace.operations()
    preload = [
        KVRecord.make(trace.asset_key(index), b"\x00" * 32)
        for index in range(scale.eth_price_store_records)
    ]

    totals: Dict[str, int] = {}
    epoch_series: Dict[str, List[float]] = {}
    for name, algorithm in (
        ("static", "memoryless"),
        ("adaptive-k1", "adaptive-k1"),
        ("adaptive-k2", "adaptive-k2"),
    ):
        config = GrubConfig(
            epoch_size=scale.epoch_size,
            record_size_bytes=32,
            algorithm=algorithm,
            k=static_k,
        )
        system = GrubSystem(config, preload=list(preload))
        report = system.run(operations)
        totals[name] = report.gas_feed
        epoch_series[name] = report.epoch_series()
    return AdaptiveKResult(totals=totals, epoch_series=epoch_series)


# ---------------------------------------------------------------------------
# Multi-tenant gateway: N hosted feeds versus N isolated deployments
# ---------------------------------------------------------------------------


@dataclass
class GatewayComparisonResult:
    """The gateway hosting N feeds versus N isolated single-feed runs."""

    num_feeds: int
    fleet: "FleetTelemetry"
    isolated_reports: Dict[str, RunReport]

    @property
    def gateway_gas_feed(self) -> int:
        return self.fleet.gas_feed

    @property
    def isolated_gas_feed(self) -> int:
        return sum(report.gas_feed for report in self.isolated_reports.values())

    @property
    def gateway_gas_per_operation(self) -> float:
        return self.fleet.gas_per_operation

    @property
    def isolated_gas_per_operation(self) -> float:
        operations = sum(report.operations for report in self.isolated_reports.values())
        if operations == 0:
            return 0.0
        return self.isolated_gas_feed / operations

    @property
    def saving(self) -> float:
        """Fractional feed-gas saving of hosting over isolation (positive = cheaper)."""
        if self.isolated_gas_feed == 0:
            return 0.0
        return 1.0 - self.gateway_gas_feed / self.isolated_gas_feed


def build_gateway_workloads(
    num_feeds: int,
    *,
    operations_per_feed: int = 256,
    num_keys: int = 2,
    record_size_bytes: int = 32,
    base_seed: int = 11,
) -> Dict[str, List[Operation]]:
    """Per-feed synthetic workloads with heterogeneous read/write mixes.

    Feeds cycle through read-heavy, balanced and write-heavy ratios so the
    fleet exercises every replication regime at once (a hosted service does
    not get to pick its tenants' workloads).
    """
    ratios = (8.0, 4.0, 1.0, 0.5)
    workloads: Dict[str, List[Operation]] = {}
    for index in range(num_feeds):
        workload = SyntheticWorkload(
            read_write_ratio=ratios[index % len(ratios)],
            num_operations=operations_per_feed,
            num_keys=num_keys,
            record_size_bytes=record_size_bytes,
            key_prefix=f"asset{index:03d}",
            seed=base_seed + index,
        )
        workloads[f"feed-{index:03d}"] = workload.operations()
    return workloads


def run_multitenant_gateway_experiment(
    num_feeds: int = 32,
    *,
    epoch_size: int = 16,
    operations_per_feed: int = 256,
    num_shards: int = 1,
    enable_cache: bool = True,
    algorithm: str = "memoryless",
    workloads: Optional[Dict[str, List[Operation]]] = None,
) -> GatewayComparisonResult:
    """Host ``num_feeds`` feeds on one gateway and compare against isolation.

    The isolated baseline runs the *same* per-feed workloads through
    ``num_feeds`` independent :class:`GrubSystem` deployments (each paying its
    own deliver/update transactions), which is exactly what operating N
    single-feed GRuB instances side by side would cost.
    """
    from repro.gateway import EpochScheduler, FeedRegistry, FeedSpec

    if workloads is None:
        workloads = build_gateway_workloads(
            num_feeds, operations_per_feed=operations_per_feed
        )
    config = GrubConfig(epoch_size=epoch_size, algorithm=algorithm)

    registry = FeedRegistry()
    for feed_id in workloads:
        registry.create_feed(FeedSpec(feed_id=feed_id, config=config))
    scheduler = EpochScheduler(registry, num_shards=num_shards, enable_cache=enable_cache)
    fleet = scheduler.run(workloads)

    isolated: Dict[str, RunReport] = {}
    for feed_id, operations in workloads.items():
        isolated[feed_id] = GrubSystem(config).run(operations)

    return GatewayComparisonResult(
        num_feeds=len(workloads), fleet=fleet, isolated_reports=isolated
    )


# ---------------------------------------------------------------------------
# Tables 1 and 6 / Figures 2 and 16: workload characterisation
# ---------------------------------------------------------------------------


@dataclass
class CharacterisationResult:
    eth_price_oracle: WorkloadStats
    btcrelay: WorkloadStats
    eth_price_target: Dict[int, float]
    btcrelay_target: Dict[int, float]


def run_workload_characterisation(
    *, scale: Optional[ExperimentScale] = None
) -> CharacterisationResult:
    """Tables 1 and 6: reads-per-write distributions of the two real-trace workloads."""
    scale = scale or ExperimentScale.default()
    eth_trace = EthPriceOracleTrace(
        num_writes=scale.eth_price_writes, assets_per_update=1, spread_reads=False
    )
    btc_trace = BtcRelayTrace(
        num_blocks=max(scale.btcrelay_blocks, 400),
        read_boost=1.0,
        write_phase_fraction=0.0,
        verification_rate=0.0,
    )
    return CharacterisationResult(
        eth_price_oracle=characterise(eth_trace.operations()),
        btcrelay=characterise(btc_trace.operations()),
        eth_price_target={k: v / 100.0 for k, v in eth_trace.reads_per_write_target().items()},
        btcrelay_target={k: v / 100.0 for k, v in btc_trace.reads_per_write_target().items()},
    )
