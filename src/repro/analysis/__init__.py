"""Experiment runners and reporting for the paper's evaluation section.

* :mod:`repro.analysis.experiments` — one runner per table/figure; each
  returns a structured result object that benchmarks print and tests assert
  shape properties on,
* :mod:`repro.analysis.reporting` — plain-text table/series formatting used by
  the benchmark harness and the examples.
"""

from repro.analysis.experiments import (
    ExperimentScale,
    RatioSweepResult,
    run_ratio_sweep,
    run_eth_price_oracle_experiment,
    run_btcrelay_experiment,
    run_ycsb_experiment,
    run_algorithm_comparison,
    run_record_size_sweep,
    run_parameter_k_sweep,
    run_threshold_ratio_experiment,
    run_adaptive_k_experiment,
    run_workload_characterisation,
)
from repro.analysis.reporting import format_table, format_series, percent_difference

__all__ = [
    "ExperimentScale",
    "RatioSweepResult",
    "run_ratio_sweep",
    "run_eth_price_oracle_experiment",
    "run_btcrelay_experiment",
    "run_ycsb_experiment",
    "run_algorithm_comparison",
    "run_record_size_sweep",
    "run_parameter_k_sweep",
    "run_threshold_ratio_experiment",
    "run_adaptive_k_experiment",
    "run_workload_characterisation",
    "format_table",
    "format_series",
    "percent_difference",
]
