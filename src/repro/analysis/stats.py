"""Statistics for benchmark samples: summaries, confidence intervals, gating.

Every committed performance number used to be a best-of-N point estimate, and
the CI perf gates compared *single samples* against a fixed percentage floor —
so real regressions could hide inside host noise and noise could masquerade as
a regression.  This module is the repair: experiments keep every sample, and
comparisons are made between *distributions*:

* :func:`summarize` — mean, sample stddev, and a 95% (configurable)
  Student-t confidence interval for a cell's samples,
* :func:`bootstrap_interval` — a seeded percentile-bootstrap CI of the mean,
  for when normality is too strong an assumption,
* :func:`welch_t` — Welch's unequal-variance t statistic with
  Welch–Satterthwaite degrees of freedom,
* :func:`effect_size` — Cohen's d on the pooled stddev,
* :func:`compare_cells` — everything above for one baseline/current pair,
* :func:`check_regression` — the gate: flags a regression only when the
  change is in the bad direction, the two confidence intervals *separate*
  (equivalently Welch's t exceeds its critical value), and the effect clears
  an explicit noise floor.  A single slow sample can no longer fail CI, and a
  real 30% cliff cannot hide behind one lucky sample either.

Everything here is stdlib-only (``math``/``random``/``statistics``) so the
benchmarks and the CI gate run on a bare ``pip install pytest`` environment.
"""

from __future__ import annotations

import math
import random
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SampleSummary",
    "CellComparison",
    "RegressionVerdict",
    "t_critical",
    "t_interval",
    "bootstrap_interval",
    "summarize",
    "welch_t",
    "effect_size",
    "compare_cells",
    "check_regression",
]


# ---------------------------------------------------------------------------
# Student-t critical values
# ---------------------------------------------------------------------------

#: Two-sided critical values of Student's t, keyed by confidence level, as
#: (degrees_of_freedom, critical_value) rows.  Interpolation between rows is
#: linear in 1/df (the curve is close to linear in 1/df, so the error from
#: interpolation is < 0.001 everywhere it matters); beyond the last finite
#: row the normal quantile takes over.
_T_TABLE: Dict[float, Tuple[Tuple[float, float], ...]] = {
    0.90: (
        (1, 6.314), (2, 2.920), (3, 2.353), (4, 2.132), (5, 2.015),
        (6, 1.943), (7, 1.895), (8, 1.860), (9, 1.833), (10, 1.812),
        (11, 1.796), (12, 1.782), (13, 1.771), (14, 1.761), (15, 1.753),
        (16, 1.746), (17, 1.740), (18, 1.734), (19, 1.729), (20, 1.725),
        (22, 1.717), (24, 1.711), (26, 1.706), (28, 1.701), (30, 1.697),
        (40, 1.684), (60, 1.671), (120, 1.658), (math.inf, 1.645),
    ),
    0.95: (
        (1, 12.706), (2, 4.303), (3, 3.182), (4, 2.776), (5, 2.571),
        (6, 2.447), (7, 2.365), (8, 2.306), (9, 2.262), (10, 2.228),
        (11, 2.201), (12, 2.179), (13, 2.160), (14, 2.145), (15, 2.131),
        (16, 2.120), (17, 2.110), (18, 2.101), (19, 2.093), (20, 2.086),
        (22, 2.074), (24, 2.064), (26, 2.056), (28, 2.048), (30, 2.042),
        (40, 2.021), (60, 2.000), (120, 1.980), (math.inf, 1.960),
    ),
    0.99: (
        (1, 63.657), (2, 9.925), (3, 5.841), (4, 4.604), (5, 4.032),
        (6, 3.707), (7, 3.499), (8, 3.355), (9, 3.250), (10, 3.169),
        (11, 3.106), (12, 3.055), (13, 3.012), (14, 2.977), (15, 2.947),
        (16, 2.921), (17, 2.898), (18, 2.878), (19, 2.861), (20, 2.845),
        (22, 2.819), (24, 2.797), (26, 2.779), (28, 2.763), (30, 2.750),
        (40, 2.704), (60, 2.660), (120, 2.617), (math.inf, 2.576),
    ),
}


def t_critical(df: float, confidence: float = 0.95) -> float:
    """Two-sided critical value of Student's t for ``df`` degrees of freedom.

    ``df`` may be fractional (Welch–Satterthwaite produces fractional df);
    values between table rows are interpolated linearly in 1/df.  Supported
    confidence levels: 0.90, 0.95, 0.99.
    """
    if confidence not in _T_TABLE:
        raise ValueError(
            f"unsupported confidence {confidence!r}; "
            f"expected one of {sorted(_T_TABLE)}"
        )
    if df <= 0 or math.isnan(df):
        raise ValueError(f"degrees of freedom must be positive, got {df!r}")
    table = _T_TABLE[confidence]
    if df <= table[0][0]:
        return table[0][1]
    for (df_lo, t_lo), (df_hi, t_hi) in zip(table, table[1:]):
        if df <= df_hi:
            if math.isinf(df_hi):
                # Interpolate between the last finite row and the normal
                # quantile using 1/df (1/inf == 0).
                inv_lo, inv = 1.0 / df_lo, 1.0 / df
                return t_hi + (t_lo - t_hi) * (inv / inv_lo)
            inv_lo, inv_hi, inv = 1.0 / df_lo, 1.0 / df_hi, 1.0 / df
            fraction = (inv - inv_lo) / (inv_hi - inv_lo)
            return t_lo + fraction * (t_hi - t_lo)
    return table[-1][1]  # pragma: no cover - inf row always matches


# ---------------------------------------------------------------------------
# Summaries and intervals
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SampleSummary:
    """Mean ± CI for one cell's retained samples."""

    n: int
    mean: float
    stddev: float
    ci_low: float
    ci_high: float
    confidence: float
    minimum: float
    maximum: float

    @property
    def ci_half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def contains(self, value: float) -> bool:
        return self.ci_low <= value <= self.ci_high

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "mean": self.mean,
            "stddev": self.stddev,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "confidence": self.confidence,
            "min": self.minimum,
            "max": self.maximum,
        }


def t_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Student-t confidence interval for the mean of ``samples``.

    A single sample (or zero spread) yields the degenerate point interval —
    deterministic metrics like wire bytes/epoch legitimately have stddev 0
    and still want a well-defined comparison.
    """
    if not samples:
        raise ValueError("t_interval needs at least one sample")
    mean = statistics.fmean(samples)
    if len(samples) == 1:
        return (mean, mean)
    stddev = statistics.stdev(samples)
    half = t_critical(len(samples) - 1, confidence) * stddev / math.sqrt(len(samples))
    return (mean - half, mean + half)


def bootstrap_interval(
    samples: Sequence[float],
    confidence: float = 0.95,
    *,
    resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Seeded percentile-bootstrap confidence interval for the mean."""
    if not samples:
        raise ValueError("bootstrap_interval needs at least one sample")
    if len(samples) == 1:
        return (samples[0], samples[0])
    rng = random.Random(seed)
    n = len(samples)
    means = sorted(
        statistics.fmean(rng.choices(samples, k=n)) for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    lo_index = min(resamples - 1, max(0, int(math.floor(alpha * resamples))))
    hi_index = min(resamples - 1, max(0, int(math.ceil((1.0 - alpha) * resamples)) - 1))
    return (means[lo_index], means[hi_index])


def summarize(samples: Sequence[float], confidence: float = 0.95) -> SampleSummary:
    """Mean, sample stddev and t-interval for one cell's samples."""
    if not samples:
        raise ValueError("summarize needs at least one sample")
    mean = statistics.fmean(samples)
    stddev = statistics.stdev(samples) if len(samples) > 1 else 0.0
    ci_low, ci_high = t_interval(samples, confidence)
    return SampleSummary(
        n=len(samples),
        mean=mean,
        stddev=stddev,
        ci_low=ci_low,
        ci_high=ci_high,
        confidence=confidence,
        minimum=min(samples),
        maximum=max(samples),
    )


# ---------------------------------------------------------------------------
# Two-sample comparison
# ---------------------------------------------------------------------------


def welch_t(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Welch's t statistic and Welch–Satterthwaite degrees of freedom.

    Handles the degenerate zero-variance case (deterministic metrics):
    identical means give ``(0, 1)``; different means with zero spread give
    ``(±inf, 1)`` — an infinitely confident separation.
    """
    if len(a) < 1 or len(b) < 1:
        raise ValueError("welch_t needs at least one sample per side")
    mean_a, mean_b = statistics.fmean(a), statistics.fmean(b)
    var_a = statistics.variance(a) if len(a) > 1 else 0.0
    var_b = statistics.variance(b) if len(b) > 1 else 0.0
    se_sq = var_a / len(a) + var_b / len(b)
    if se_sq == 0.0:
        if mean_a == mean_b:
            return (0.0, 1.0)
        return (math.copysign(math.inf, mean_a - mean_b), 1.0)
    t = (mean_a - mean_b) / math.sqrt(se_sq)
    numerator = se_sq * se_sq
    denominator = 0.0
    if var_a > 0 and len(a) > 1:
        denominator += (var_a / len(a)) ** 2 / (len(a) - 1)
    if var_b > 0 and len(b) > 1:
        denominator += (var_b / len(b)) ** 2 / (len(b) - 1)
    df = numerator / denominator if denominator > 0 else 1.0
    return (t, max(df, 1.0))


def effect_size(a: Sequence[float], b: Sequence[float]) -> float:
    """Cohen's d between two sample sets (pooled stddev).

    Zero pooled spread degenerates to ``0`` for equal means and ``±inf``
    otherwise, mirroring :func:`welch_t`.
    """
    if len(a) < 1 or len(b) < 1:
        raise ValueError("effect_size needs at least one sample per side")
    mean_a, mean_b = statistics.fmean(a), statistics.fmean(b)
    var_a = statistics.variance(a) if len(a) > 1 else 0.0
    var_b = statistics.variance(b) if len(b) > 1 else 0.0
    weight_a, weight_b = max(len(a) - 1, 0), max(len(b) - 1, 0)
    if weight_a + weight_b == 0:
        pooled = 0.0
    else:
        pooled = math.sqrt(
            (weight_a * var_a + weight_b * var_b) / (weight_a + weight_b)
        )
    if pooled == 0.0:
        if mean_a == mean_b:
            return 0.0
        return math.copysign(math.inf, mean_a - mean_b)
    return (mean_a - mean_b) / pooled


@dataclass(frozen=True)
class CellComparison:
    """Everything :func:`check_regression` looks at for one metric."""

    baseline: SampleSummary
    current: SampleSummary
    mean_diff: float
    relative_change: float
    cohen_d: float
    t_statistic: float
    welch_df: float
    welch_significant: bool
    intervals_disjoint: bool
    bootstrap_disjoint: bool
    #: Both sides have zero spread — an exact-valued (deterministic) metric
    #: like wire bytes/epoch or gas/op, where every repetition reproduces the
    #: same number.  The t machinery degenerates on such cells (any shift is
    #: ``|t| = inf`` against point intervals), so :func:`check_regression`
    #: judges them by the deterministic shift itself instead.
    exact: bool = False

    def as_dict(self) -> dict:
        return {
            "baseline": self.baseline.as_dict(),
            "current": self.current.as_dict(),
            "mean_diff": self.mean_diff,
            "relative_change": self.relative_change,
            "cohen_d": self.cohen_d,
            "t_statistic": self.t_statistic,
            "welch_df": self.welch_df,
            "welch_significant": self.welch_significant,
            "intervals_disjoint": self.intervals_disjoint,
            "bootstrap_disjoint": self.bootstrap_disjoint,
            "exact": self.exact,
        }


def _disjoint(a: Tuple[float, float], b: Tuple[float, float]) -> bool:
    return a[1] < b[0] or b[1] < a[0]


def compare_cells(
    baseline: Sequence[float],
    current: Sequence[float],
    confidence: float = 0.95,
    *,
    bootstrap_resamples: int = 2000,
    bootstrap_seed: int = 0,
) -> CellComparison:
    """Compare two sample sets of the same metric (baseline vs current)."""
    base = summarize(baseline, confidence)
    curr = summarize(current, confidence)
    t, df = welch_t(current, baseline)
    significant = abs(t) > t_critical(df, confidence)
    boot_base = bootstrap_interval(
        baseline, confidence, resamples=bootstrap_resamples, seed=bootstrap_seed
    )
    boot_curr = bootstrap_interval(
        current, confidence, resamples=bootstrap_resamples, seed=bootstrap_seed + 1
    )
    mean_diff = curr.mean - base.mean
    relative = mean_diff / base.mean if base.mean != 0 else 0.0
    return CellComparison(
        exact=base.stddev == 0.0 and curr.stddev == 0.0,
        baseline=base,
        current=curr,
        mean_diff=mean_diff,
        relative_change=relative,
        cohen_d=effect_size(current, baseline),
        t_statistic=t,
        welch_df=df,
        welch_significant=significant,
        intervals_disjoint=_disjoint(
            (base.ci_low, base.ci_high), (curr.ci_low, curr.ci_high)
        ),
        bootstrap_disjoint=_disjoint(boot_base, boot_curr),
    )


# ---------------------------------------------------------------------------
# The regression gate
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegressionVerdict:
    """Outcome of :func:`check_regression` for one metric of one cell."""

    regressed: bool
    reason: str
    comparison: CellComparison
    higher_is_better: bool = True
    min_relative_change: float = 0.0
    notes: List[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "regressed": self.regressed,
            "reason": self.reason,
            "higher_is_better": self.higher_is_better,
            "min_relative_change": self.min_relative_change,
            "comparison": self.comparison.as_dict(),
        }


def check_regression(
    baseline: Sequence[float],
    current: Sequence[float],
    *,
    higher_is_better: bool = True,
    confidence: float = 0.95,
    min_relative_change: float = 0.0,
    bootstrap_resamples: int = 2000,
) -> RegressionVerdict:
    """Flag a regression only when the sample distributions truly separate.

    ``current`` regresses against ``baseline`` iff ALL of:

    1. the current mean moved in the *bad* direction (below for
       higher-is-better metrics like ops/sec, above for lower-is-better
       metrics like wire bytes/epoch);
    2. the two confidence intervals are statistically separated — Welch's t
       exceeds its critical value at ``confidence`` *or* the percentile
       bootstrap CIs do not overlap (either test alone suffices: Welch
       assumes rough normality, the bootstrap does not);
    3. the relative change clears ``min_relative_change`` — the explicit
       floor that absorbs host-class differences when baseline and current
       ran on different machines.  Within that floor a shift may be
       statistically real but is not actionable.

    **Exact-valued metrics** (both sides zero-stddev — deterministic numbers
    like wire bytes/epoch or ``gas_per_op``, where every repetition
    reproduces the same value) are judged explicitly rather than through the
    degenerate t machinery: there is no sampling noise to separate from, so
    any shift *is* the signal, and the verdict reduces to direction plus the
    actionability floor.  Their reasons report the deterministic before/after
    values instead of a meaningless ``|t| = inf``.

    Replaces the old single-sample 20%-floor gates: one noisy sample can no
    longer fail (or excuse) a run.
    """
    comparison = compare_cells(
        baseline,
        current,
        confidence,
        bootstrap_resamples=bootstrap_resamples,
    )
    worse = (
        comparison.mean_diff < 0 if higher_is_better else comparison.mean_diff > 0
    )
    separated = (
        comparison.welch_significant
        or comparison.intervals_disjoint
        or comparison.bootstrap_disjoint
    )
    beyond_floor = abs(comparison.relative_change) >= min_relative_change
    direction = "drop" if higher_is_better else "growth"
    change_pct = comparison.relative_change * 100.0
    if comparison.exact:
        base_mean = comparison.baseline.mean
        curr_mean = comparison.current.mean
        if base_mean == curr_mean:
            verdict, reason = False, (
                f"no regression: exact-valued metric unchanged at {curr_mean:,g}"
            )
        elif not worse:
            verdict, reason = False, (
                f"no regression: exact-valued metric moved the good way, "
                f"{base_mean:,g} -> {curr_mean:,g} ({change_pct:+.1f}%)"
            )
        elif not beyond_floor:
            verdict, reason = False, (
                f"no regression: exact-valued metric shifted "
                f"{base_mean:,g} -> {curr_mean:,g} ({change_pct:+.1f}%), under "
                f"the {min_relative_change:.0%} actionability floor"
            )
        else:
            verdict, reason = True, (
                f"REGRESSION: exact-valued metric shifted deterministically, "
                f"{base_mean:,g} -> {curr_mean:,g} ({change_pct:+.1f}% {direction}; "
                f"zero spread on both sides, so the shift is the signal)"
            )
        return RegressionVerdict(
            regressed=verdict,
            reason=reason,
            comparison=comparison,
            higher_is_better=higher_is_better,
            min_relative_change=min_relative_change,
        )
    if not worse:
        verdict, reason = False, (
            f"no regression: mean moved the good way ({change_pct:+.1f}%)"
        )
    elif not separated:
        verdict, reason = False, (
            f"no regression: {change_pct:+.1f}% {direction} is within noise "
            f"(|t|={abs(comparison.t_statistic):.2f} <= "
            f"t_crit({comparison.welch_df:.1f} df), CIs overlap)"
        )
    elif not beyond_floor:
        verdict, reason = False, (
            f"no regression: {change_pct:+.1f}% {direction} is statistically "
            f"real but under the {min_relative_change:.0%} actionability floor"
        )
    else:
        verdict, reason = True, (
            f"REGRESSION: {change_pct:+.1f}% {direction} "
            f"(baseline {comparison.baseline.mean:,.1f} "
            f"[{comparison.baseline.ci_low:,.1f}, {comparison.baseline.ci_high:,.1f}] "
            f"vs current {comparison.current.mean:,.1f} "
            f"[{comparison.current.ci_low:,.1f}, {comparison.current.ci_high:,.1f}]; "
            f"|t|={abs(comparison.t_statistic):.2f} at {comparison.welch_df:.1f} df, "
            f"d={comparison.cohen_d:.2f})"
        )
    return RegressionVerdict(
        regressed=verdict,
        reason=reason,
        comparison=comparison,
        higher_is_better=higher_is_better,
        min_relative_change=min_relative_change,
    )
