"""GRuB reproduction: workload-adaptive data replication for blockchain data feeds.

This package is a from-scratch, laptop-scale reproduction of the system
described in *Cost-Effective Data Feeds to Blockchains via Workload-Adaptive
Data Replication* (Middleware 2020).  It provides:

* ``repro.chain`` — a gas-metered Ethereum-like blockchain simulator,
* ``repro.storage`` — an LSM-tree key-value store standing in for LevelDB,
* ``repro.ads`` — Merkle-tree authenticated data structures,
* ``repro.core`` — the GRuB system itself (online replication decision
  algorithms, control plane, data plane, storage-manager contract, and the
  static/dynamic baselines used in the paper's evaluation),
* ``repro.apps`` — the paper's case-study applications (a collateralised
  stablecoin on a price feed, and a BtcRelay-style side-chain feed backing a
  Bitcoin-pegged token),
* ``repro.workloads`` — the workload generators used in the evaluation
  (ethPriceOracle trace, BtcRelay trace, YCSB A/B/E/F, synthetic ratios),
* ``repro.analysis`` — experiment runners that regenerate every table and
  figure in the paper's evaluation section,
* ``repro.gateway`` — the multi-tenant hosting runtime: many feeds on one
  shared chain with cross-feed transaction batching, a shared SP watchdog, a
  consumer-side read cache, and per-feed gas/throughput telemetry.

Quickstart::

    from repro import GrubSystem, GrubConfig
    from repro.workloads import SyntheticWorkload

    system = GrubSystem(GrubConfig(epoch_size=32))
    workload = SyntheticWorkload(read_write_ratio=4, num_operations=256)
    report = system.run(workload.operations())
    print(report.gas_per_operation)
"""

from repro.common.types import KVRecord, Operation, OperationKind, ReplicationState
from repro.chain.gas import GasSchedule
from repro.core.config import GrubConfig
from repro.core.grub import GrubSystem
from repro.core.baselines import (
    NoReplicationSystem,
    AlwaysReplicateSystem,
    OnChainTraceSystem,
    OnChainReadTraceSystem,
)

__version__ = "1.0.0"

__all__ = [
    "KVRecord",
    "Operation",
    "OperationKind",
    "ReplicationState",
    "GasSchedule",
    "GrubConfig",
    "GrubSystem",
    "NoReplicationSystem",
    "AlwaysReplicateSystem",
    "OnChainTraceSystem",
    "OnChainReadTraceSystem",
    "__version__",
]
