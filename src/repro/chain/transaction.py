"""Transactions and receipts for the simulated blockchain.

A transaction names a target contract and function, carries decoded arguments
plus an explicit calldata size (in bytes) used for intrinsic gas.  The
calldata size is supplied by the sender-side protocol code (the DO's epoch
batcher, the SP's deliver path) because that is where the paper's accounting
happens: a ``gPuts`` batching ten one-word records pays
``21000 + 2176 * (10 + digest words)`` before any execution gas.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.chain.events import LogEvent
from repro.common.encoding import words_for_bytes

_transaction_counter = itertools.count()


@dataclass
class Transaction:
    """A signed message from an externally-owned account to a contract."""

    sender: str
    contract: str
    function: str
    args: Dict[str, Any] = field(default_factory=dict)
    calldata_bytes: int = 0
    value: int = 0
    gas_limit: Optional[int] = None
    layer: str = "feed"
    #: Tenant the transaction's gas is billed to (a feed id in the gateway);
    #: ``None`` leaves the gas unscoped, as in single-feed deployments.
    scope: Optional[str] = None
    #: For batched gateway transactions serving several tenants: scope →
    #: calldata bytes of that tenant's group.  When set, the intrinsic cost is
    #: split across the scopes (see ``split_transaction_cost``) instead of
    #: being billed to ``scope``.
    scopes: Optional[Dict[str, int]] = None
    txid: int = field(default_factory=lambda: next(_transaction_counter))
    submitted_at: float = 0.0

    @property
    def calldata_words(self) -> int:
        return words_for_bytes(self.calldata_bytes)


@dataclass
class TransactionReceipt:
    """Outcome of executing a transaction inside a block."""

    transaction: Transaction
    success: bool
    gas_used: int
    block_number: int
    transaction_index: int
    return_value: Any = None
    error: Optional[str] = None
    events: List[LogEvent] = field(default_factory=list)
    finalized_at: Optional[float] = None

    @property
    def txid(self) -> int:
        return self.transaction.txid
