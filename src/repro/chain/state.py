"""Gas-metered smart-contract storage.

Each contract owns a :class:`ContractStorage`: a mapping from string slots to
byte values where every access is charged according to the gas schedule —
inserts at the (expensive) ``SSTORE`` insert price, overwrites at the update
price, reads at the ``SLOAD`` price, and deletes at the delete price with an
optional refund.  This is the component whose pricing asymmetry drives the
whole GRuB design: keeping a replica on chain makes reads cheap and writes
expensive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.chain.vm import GasMeter
from repro.common.encoding import encode_value, words_for_bytes, Value

#: Journal marker for "the slot did not exist before this transaction".
_ABSENT = object()


@dataclass
class ContractStorage:
    """Persistent key-value storage of one simulated contract."""

    slots: Dict[str, bytes] = field(default_factory=dict)
    writes: int = 0
    reads: int = 0
    deletes: int = 0
    #: Undo journal of the transaction currently executing: slot → its
    #: pre-transaction value, or ``_ABSENT``.  Allocated lazily on the first
    #: journalled write — the chain journals *every* deployed contract per
    #: transaction, and in a multi-tenant fleet most contracts are untouched
    #: by any given transaction, so they must not pay a dict allocation each.
    _journal: Optional[Dict[str, object]] = field(default=None, repr=False)
    _in_tx: bool = field(default=False, repr=False)
    #: Invoked after a rollback (or wholesale restore) mutates ``slots``
    #: behind the owning contract's back, so contracts keeping derived state
    #: (e.g. the storage manager's incremental replica counter) can resync.
    on_rollback: Optional[Callable[[], None]] = field(default=None, repr=False)

    # -- transaction revert bookkeeping -------------------------------------

    def begin_tx(self) -> None:
        """Start journalling writes so a failed transaction can roll back."""
        self._in_tx = True
        self._journal = None

    def commit_tx(self) -> None:
        """Discard the journal (the transaction succeeded)."""
        self._in_tx = False
        self._journal = None

    def rollback_tx(self) -> None:
        """Undo every write journalled since :meth:`begin_tx`."""
        if self._journal:
            for slot, previous in self._journal.items():
                if previous is _ABSENT:
                    self.slots.pop(slot, None)
                else:
                    self.slots[slot] = previous  # type: ignore[assignment]
            if self.on_rollback is not None:
                self.on_rollback()
        self._in_tx = False
        self._journal = None

    def _record(self, slot: str) -> None:
        if not self._in_tx:
            return
        journal = self._journal
        if journal is None:
            journal = self._journal = {}
        if slot not in journal:
            journal[slot] = self.slots.get(slot, _ABSENT)

    def store(self, meter: GasMeter, slot: str, value: Value) -> None:
        """Write ``value`` into ``slot`` charging insert or update pricing."""
        encoded = encode_value(value)
        words = max(1, words_for_bytes(len(encoded)))
        schedule = meter.schedule
        if slot in self.slots:
            meter.charge(schedule.storage_update_cost(words), "sstore_update")
        else:
            meter.charge(schedule.storage_insert_cost(words), "sstore_insert")
        self._record(slot)
        self.slots[slot] = encoded
        self.writes += 1

    def store_reusing(self, meter: GasMeter, slot: str, value: Value) -> None:
        """Write ``value`` into ``slot`` at storage-update pricing even if new.

        Models the "reusable storage" configuration of the paper's BtcRelay
        experiment: the contract keeps a pool of previously allocated replica
        slots and recycles one for each new replica, so the write touches an
        already-allocated slot (update price) rather than claiming a fresh one
        (insert price).  The caller is responsible for only using this when a
        recycled slot is actually available.
        """
        encoded = encode_value(value)
        words = max(1, words_for_bytes(len(encoded)))
        meter.charge(meter.schedule.storage_update_cost(words), "sstore_update")
        self._record(slot)
        self.slots[slot] = encoded
        self.writes += 1

    def load(self, meter: GasMeter, slot: str) -> Optional[bytes]:
        """Read ``slot``; a miss still charges a one-word ``SLOAD``.

        The word arithmetic is inlined: this is the single hottest storage
        path (every ``gGet`` of every feed lands here).
        """
        value = self.slots.get(slot)
        words = ((len(value) + 31) >> 5) or 1 if value is not None else 1
        meter.charge(meter.schedule.storage_read_per_word * words, "sload")
        self.reads += 1
        return value

    def contains(self, meter: GasMeter, slot: str) -> bool:
        """Existence check priced as a one-word read."""
        meter.charge(meter.schedule.storage_read_cost(1), "sload")
        self.reads += 1
        return slot in self.slots

    def delete(self, meter: GasMeter, slot: str) -> bool:
        """Clear ``slot``; charges the delete cost and credits any refund."""
        if slot not in self.slots:
            return False
        words = max(1, words_for_bytes(len(self.slots[slot])))
        meter.charge(meter.schedule.storage_delete_cost(), "sstore_delete")
        refund = meter.schedule.storage_refund(words)
        if refund:
            meter.refund(refund)
        self._record(slot)
        del self.slots[slot]
        self.deletes += 1
        return True

    # -- unmetered helpers -------------------------------------------------
    #
    # The methods below read state without charging gas.  They are used by
    # off-chain components (the SP watchdog, experiment analysis) that inspect
    # contract state through their own full node, which costs no gas.

    def peek(self, slot: str) -> Optional[bytes]:
        """Unmetered read (off-chain observation of public contract state)."""
        return self.slots.get(slot)

    def has(self, slot: str) -> bool:
        """Unmetered existence check."""
        return slot in self.slots

    def __len__(self) -> int:
        return len(self.slots)

    def items(self) -> Iterator[Tuple[str, bytes]]:
        return iter(self.slots.items())

    def size_words(self) -> int:
        """Total number of words currently occupied (for reports)."""
        return sum(max(1, words_for_bytes(len(v))) for v in self.slots.values())

    def snapshot(self) -> Dict[str, bytes]:
        """Copy of the slots, used by the chain to roll back reverted calls."""
        return dict(self.slots)

    def restore(self, snapshot: Dict[str, bytes]) -> None:
        """Restore a snapshot taken before a reverted call."""
        self.slots = dict(snapshot)
        if self.on_rollback is not None:
            self.on_rollback()
