"""Externally-owned accounts with Ether balances.

The stablecoin case study (Section 4.1 of the paper) needs buyers and sellers
that pay Ether into the SCoinIssuer contract and receive Ether back on
redemption.  This module provides a minimal account registry with balances in
wei, transfers and simple escrow into/out of contract addresses.  It is not a
consensus component; it exists so the application contracts can express their
collateral logic realistically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.common.errors import ContractError

WEI_PER_ETHER = 10**18


@dataclass
class AccountRegistry:
    """Balances of externally-owned accounts and contract escrow accounts."""

    balances: Dict[str, int] = field(default_factory=dict)

    def create(self, address: str, ether: float = 0.0) -> str:
        """Register an account, optionally funding it with ``ether``."""
        self.balances.setdefault(address, 0)
        if ether:
            self.balances[address] += int(ether * WEI_PER_ETHER)
        return address

    def balance_of(self, address: str) -> int:
        """Balance in wei (0 for unknown accounts)."""
        return self.balances.get(address, 0)

    def balance_in_ether(self, address: str) -> float:
        return self.balance_of(address) / WEI_PER_ETHER

    def transfer(self, sender: str, recipient: str, amount_wei: int) -> None:
        """Move ``amount_wei`` from ``sender`` to ``recipient``.

        Raises :class:`ContractError` on insufficient funds, mirroring a
        reverted value transfer.
        """
        if amount_wei < 0:
            raise ContractError("transfer amount must be non-negative")
        if self.balance_of(sender) < amount_wei:
            raise ContractError(
                f"insufficient balance: {sender} has {self.balance_of(sender)} wei, "
                f"needs {amount_wei}"
            )
        self.balances[sender] = self.balance_of(sender) - amount_wei
        self.balances[recipient] = self.balance_of(recipient) + amount_wei

    def deposit(self, address: str, amount_wei: int) -> None:
        """Mint wei into an account (used to fund test fixtures)."""
        if amount_wei < 0:
            raise ContractError("deposit amount must be non-negative")
        self.balances[address] = self.balance_of(address) + amount_wei

    def total_supply(self) -> int:
        return sum(self.balances.values())
