"""The Ethereum gas schedule used throughout the reproduction.

The constants follow Table 2 of the paper (which in turn follows the yellow
paper), expressed per 32-byte word:

==========================  =============================================
Operation                   Gas
==========================  =============================================
Transaction                 ``21000 + 2176 * X`` for ``X`` calldata words
Storage write (insert)      ``20000 * X``
Storage write (update)      ``5000 * X``
Storage read                ``200 * X``
Hash computation            ``30 + 6 * X``
==========================  =============================================

The schedule also carries the LOG-event pricing (used by GRuB's ``request``
events) and the optional storage-clear refund, which is off by default because
the paper's cost model does not account for refunds; an ablation benchmark
turns it on.

:class:`GasLedger` attributes consumed gas to named categories and layers so
experiments can report feed-layer versus application-layer gas the way the
paper's Table 3 does.  It additionally attributes gas to *scopes* — free-form
tenant identifiers (one per hosted feed in the multi-tenant gateway) — so a
fleet of feeds sharing one chain can each be billed exactly the gas they
caused, including their fair share of batched transactions that serve several
feeds at once (see :func:`split_transaction_cost`).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.common.encoding import words_for_bytes


@dataclass(frozen=True)
class GasSchedule:
    """Per-operation gas pricing (Table 2 of the paper).

    All ``*_per_word`` figures are charged per 32-byte word, rounding the
    payload size up.
    """

    transaction_base: int = 21_000
    transaction_word: int = 2_176
    storage_insert_per_word: int = 20_000
    storage_update_per_word: int = 5_000
    storage_read_per_word: int = 200
    storage_delete_base: int = 5_000
    storage_refund_per_word: int = 15_000
    hash_base: int = 30
    hash_per_word: int = 6
    log_base: int = 375
    log_topic: int = 375
    log_data_per_byte: int = 8
    call_base: int = 700
    memory_per_word: int = 3
    refunds_enabled: bool = False

    def transaction_cost(self, calldata_words: int) -> int:
        """Intrinsic cost of a transaction carrying ``calldata_words`` words."""
        if calldata_words < 0:
            raise ValueError("calldata words must be non-negative")
        return self.transaction_base + self.transaction_word * calldata_words

    def transaction_cost_bytes(self, calldata_bytes: int) -> int:
        return self.transaction_cost(words_for_bytes(calldata_bytes))

    def storage_insert_cost(self, words: int) -> int:
        return self.storage_insert_per_word * max(0, words)

    def storage_update_cost(self, words: int) -> int:
        return self.storage_update_per_word * max(0, words)

    def storage_read_cost(self, words: int) -> int:
        return self.storage_read_per_word * max(0, words)

    def storage_delete_cost(self) -> int:
        return self.storage_delete_base

    def storage_refund(self, words: int) -> int:
        """Refund credited when a slot is cleared (0 unless refunds are enabled)."""
        if not self.refunds_enabled:
            return 0
        return self.storage_refund_per_word * max(0, words)

    def hash_cost(self, words: int) -> int:
        return self.hash_base + self.hash_per_word * max(0, words)

    def log_cost(self, num_topics: int, data_bytes: int) -> int:
        return (
            self.log_base
            + self.log_topic * max(0, num_topics)
            + self.log_data_per_byte * max(0, data_bytes)
        )

    def call_cost(self) -> int:
        return self.call_base

    def memory_cost(self, words: int) -> int:
        return self.memory_per_word * max(0, words)

    @property
    def replication_threshold_k(self) -> int:
        """The paper's Equation 1: ``K = C_update / C_read_off`` (word units).

        ``C_update`` is the per-word cost of updating on-chain storage and
        ``C_read_off`` the per-word cost of moving a word on chain in calldata.
        With the default schedule this is ``5000 / 2176 ≈ 2``, the value the
        paper uses for its 2-competitive configuration.
        """
        return max(1, round(self.storage_update_per_word / self.transaction_word))

    def with_refunds(self) -> "GasSchedule":
        """Return a copy of the schedule with storage-clear refunds enabled."""
        return GasSchedule(
            transaction_base=self.transaction_base,
            transaction_word=self.transaction_word,
            storage_insert_per_word=self.storage_insert_per_word,
            storage_update_per_word=self.storage_update_per_word,
            storage_read_per_word=self.storage_read_per_word,
            storage_delete_base=self.storage_delete_base,
            storage_refund_per_word=self.storage_refund_per_word,
            hash_base=self.hash_base,
            hash_per_word=self.hash_per_word,
            log_base=self.log_base,
            log_topic=self.log_topic,
            log_data_per_byte=self.log_data_per_byte,
            call_base=self.call_base,
            memory_per_word=self.memory_per_word,
            refunds_enabled=True,
        )


#: Gas-attribution layer for the data-feed protocol itself.
LAYER_FEED = "feed"
#: Gas-attribution layer for application logic built on the feed.
LAYER_APPLICATION = "application"


@dataclass(slots=True)
class GasLedger:
    """Accumulates gas charges attributed to categories and layers.

    Categories are free-form strings such as ``"transaction"``, ``"sstore"``,
    ``"sload"``, ``"hash"``, ``"log"``; layers distinguish the data-feed
    protocol from application logic running in DU callbacks.  Slotted because
    every gas charge in the simulator lands here.
    """

    total: int = 0
    refunded: int = 0
    by_category: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    by_layer: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: (scope, layer) → gas.  A scope is a tenant identifier (a feed id in the
    #: multi-tenant gateway); charges with ``scope=None`` are not scoped.
    by_scope: Dict[Tuple[str, str], int] = field(default_factory=lambda: defaultdict(int))

    def charge(
        self,
        amount: int,
        category: str,
        layer: str = LAYER_FEED,
        scope: Optional[str] = None,
    ) -> int:
        """Record ``amount`` gas against ``category`` within ``layer``."""
        if amount < 0:
            raise ValueError("gas charges must be non-negative")
        self.total += amount
        self.by_category[category] += amount
        self.by_layer[layer] += amount
        if scope is not None:
            self.by_scope[(scope, layer)] += amount
        return amount

    def refund(self, amount: int, layer: str = LAYER_FEED, scope: Optional[str] = None) -> int:
        """Record a refund (subtracted from the layer and grand totals)."""
        if amount < 0:
            raise ValueError("refunds must be non-negative")
        self.refunded += amount
        self.total -= amount
        self.by_layer[layer] -= amount
        if scope is not None:
            self.by_scope[(scope, layer)] -= amount
        return amount

    def scope_total(self, scope: str, layer: Optional[str] = None) -> int:
        """Gas attributed to ``scope`` (within ``layer``, or across all layers)."""
        if layer is not None:
            return self.by_scope.get((scope, layer), 0)
        return sum(
            amount for (owner, _), amount in self.by_scope.items() if owner == scope
        )

    def scopes(self) -> List[str]:
        """All scope identifiers that have been charged, sorted."""
        return sorted({owner for owner, _ in self.by_scope})

    def layer_total(self, layer: str) -> int:
        return self.by_layer.get(layer, 0)

    @property
    def feed_total(self) -> int:
        return self.layer_total(LAYER_FEED)

    @property
    def application_total(self) -> int:
        return self.layer_total(LAYER_APPLICATION)

    def snapshot(self) -> "GasLedgerSnapshot":
        """Capture the current totals so a caller can later compute a delta."""
        return GasLedgerSnapshot(
            total=self.total,
            by_layer=dict(self.by_layer),
            by_category=dict(self.by_category),
            by_scope=dict(self.by_scope),
        )

    def merge(self, other: "GasLedger") -> None:
        """Fold another ledger's charges into this one."""
        self.total += other.total
        self.refunded += other.refunded
        for category, amount in other.by_category.items():
            self.by_category[category] += amount
        for layer, amount in other.by_layer.items():
            self.by_layer[layer] += amount
        for scope_layer, amount in other.by_scope.items():
            self.by_scope[scope_layer] += amount


@dataclass(frozen=True)
class GasLedgerSnapshot:
    """Immutable capture of a :class:`GasLedger` used for delta accounting."""

    total: int
    by_layer: Mapping[str, int]
    by_category: Mapping[str, int]
    by_scope: Mapping[Tuple[str, str], int] = field(default_factory=dict)

    def delta(self, ledger: GasLedger) -> "GasDelta":
        layers = {
            layer: ledger.by_layer.get(layer, 0) - self.by_layer.get(layer, 0)
            for layer in set(ledger.by_layer) | set(self.by_layer)
        }
        categories = {
            cat: ledger.by_category.get(cat, 0) - self.by_category.get(cat, 0)
            for cat in set(ledger.by_category) | set(self.by_category)
        }
        scopes = {
            key: ledger.by_scope.get(key, 0) - self.by_scope.get(key, 0)
            for key in set(ledger.by_scope) | set(self.by_scope)
        }
        return GasDelta(
            total=ledger.total - self.total,
            by_layer=layers,
            by_category=categories,
            by_scope=scopes,
        )


@dataclass(frozen=True)
class GasDelta:
    """Gas consumed between two snapshots."""

    total: int
    by_layer: Mapping[str, int]
    by_category: Mapping[str, int]
    by_scope: Mapping[Tuple[str, str], int] = field(default_factory=dict)

    def layer(self, name: str) -> int:
        return self.by_layer.get(name, 0)

    def scope(self, name: str, layer: Optional[str] = None) -> int:
        if layer is not None:
            return self.by_scope.get((name, layer), 0)
        return sum(amount for (owner, _), amount in self.by_scope.items() if owner == name)


def split_transaction_cost(
    schedule: GasSchedule, calldata_by_scope: Mapping[str, int]
) -> Dict[str, int]:
    """Split a batched transaction's intrinsic cost across the scopes it serves.

    A gateway transaction (a cross-feed ``deliver`` or ``update`` batch)
    carries one group of calldata per feed.  Each feed owes exactly the
    calldata-word cost of its own group (each group is ABI-rounded to whole
    words, as it would be on a real chain), while the 21k transaction *base*
    cost — the amortisable part — is divided evenly across the feeds served,
    with any integer remainder assigned to the lexicographically first feeds
    so the shares always sum to the charged total (no gas is double-counted
    and none is dropped).

    Returns scope → gas share; the transaction's total intrinsic cost is the
    sum of the shares.
    """
    if not calldata_by_scope:
        raise ValueError("cannot split a transaction across zero scopes")
    scopes = sorted(calldata_by_scope)
    base_share, base_remainder = divmod(schedule.transaction_base, len(scopes))
    shares: Dict[str, int] = {}
    for index, scope in enumerate(scopes):
        words = words_for_bytes(max(0, calldata_by_scope[scope]))
        shares[scope] = (
            base_share
            + (1 if index < base_remainder else 0)
            + schedule.transaction_word * words
        )
    return shares


def ledger_to_wire(ledger: GasLedger) -> dict:
    """Plain-data form of a ledger (the process backend's wire contract).

    A ledger *could* be pickled whole, but the explicit snapshot keeps the
    process boundary inspectable and intentional: exactly the counters cross,
    never incidental object state, and :func:`ledger_delta_wire` can compute
    zero-omitting deltas against it (merging a delta then creates exactly the
    entries direct charging would have).  Nothing is filtered or reordered:
    ``ledger_from_wire(ledger_to_wire(l))`` reproduces every counter.
    """
    return {
        "total": ledger.total,
        "refunded": ledger.refunded,
        "by_category": dict(ledger.by_category),
        "by_layer": dict(ledger.by_layer),
        "by_scope": [
            (scope, layer, amount)
            for (scope, layer), amount in ledger.by_scope.items()
        ],
    }


def ledger_from_wire(payload: Mapping) -> GasLedger:
    """Rebuild a :class:`GasLedger` from :func:`ledger_to_wire` output."""
    ledger = GasLedger()
    ledger.total = payload["total"]
    ledger.refunded = payload["refunded"]
    ledger.by_category.update(payload["by_category"])
    ledger.by_layer.update(payload["by_layer"])
    for scope, layer, amount in payload["by_scope"]:
        ledger.by_scope[(scope, layer)] = amount
    return ledger


def ledger_delta_wire(before: Mapping, ledger: GasLedger) -> dict:
    """Exact charge delta between a :func:`ledger_to_wire` snapshot and now.

    Returned in wire form; keys whose delta is zero are omitted so merging the
    delta into another ledger creates exactly the entries the charges would
    have created had they been applied there directly.
    """
    before_scope = {
        (scope, layer): amount for scope, layer, amount in before["by_scope"]
    }
    return {
        "total": ledger.total - before["total"],
        "refunded": ledger.refunded - before["refunded"],
        "by_category": {
            category: amount - before["by_category"].get(category, 0)
            for category, amount in ledger.by_category.items()
            if amount != before["by_category"].get(category, 0)
        },
        "by_layer": {
            layer: amount - before["by_layer"].get(layer, 0)
            for layer, amount in ledger.by_layer.items()
            if amount != before["by_layer"].get(layer, 0)
        },
        "by_scope": [
            (scope, layer, amount - before_scope.get((scope, layer), 0))
            for (scope, layer), amount in ledger.by_scope.items()
            if amount != before_scope.get((scope, layer), 0)
        ],
    }


def summarise_categories(ledgers: Iterable[GasLedger]) -> Dict[str, int]:
    """Aggregate the per-category totals of several ledgers (for reports)."""
    combined: Dict[str, int] = defaultdict(int)
    for ledger in ledgers:
        for category, amount in ledger.by_category.items():
            combined[category] += amount
    return dict(combined)


DEFAULT_SCHEDULE: Optional[GasSchedule] = GasSchedule()
"""Module-level default schedule; components copy it rather than mutate it."""
