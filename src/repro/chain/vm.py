"""Gas metering and execution contexts for the simulated EVM.

The simulator does not interpret bytecode; contracts are Python classes whose
methods charge gas explicitly through the :class:`GasMeter` carried by the
:class:`ExecutionContext` of the transaction (or internal call) being
executed.  This keeps the gas accounting faithful to the schedule while
leaving contract logic readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.chain.gas import GasLedger, GasSchedule, LAYER_FEED
from repro.common.errors import OutOfGasError


@dataclass(slots=True)
class GasMeter:
    """Meters gas for a single execution (transaction or internal call).

    The meter both enforces a limit (raising :class:`OutOfGasError` when the
    limit would be exceeded) and attributes every charge to the blockchain's
    global :class:`GasLedger` so experiments can aggregate by category/layer.

    ``charge`` is the innermost call of every benchmark (every storage access,
    hash, log and internal call goes through it), so the class is slotted and
    the common case — no limit, no parent meter, default attribution — takes
    the shortest possible path.
    """

    schedule: GasSchedule
    ledger: GasLedger
    limit: Optional[int] = None
    used: int = 0
    layer: str = LAYER_FEED
    #: Tenant identifier the charges are billed to (a feed id in the
    #: multi-tenant gateway); ``None`` leaves charges unscoped.
    scope: Optional[str] = None
    #: The meter this one was forked from (layer/scope-override internal
    #: calls).  Charges propagate up so the enclosing transaction's
    #: ``gas_used`` and gas limit still cover the nested execution.
    parent: Optional["GasMeter"] = None

    def charge(
        self,
        amount: int,
        category: str,
        layer: Optional[str] = None,
        scope: Optional[str] = None,
    ) -> int:
        """Consume ``amount`` gas, attributing it to ``category``.

        ``layer`` and ``scope`` override the meter's own attribution for this
        one charge (``scope`` is used when splitting a batched transaction's
        intrinsic cost across the tenants it serves).
        """
        if amount < 0:
            raise ValueError("gas charges must be non-negative")
        if self.limit is not None and self.used + amount > self.limit:
            raise OutOfGasError(requested=amount, remaining=self.limit - self.used)
        if self.parent is not None:
            self._propagate(amount)
        self.used += amount
        # Inlined GasLedger.charge: this is the innermost call of every
        # benchmark, and the extra frame showed up in profiles.
        layer = layer or self.layer
        scope = scope or self.scope
        ledger = self.ledger
        ledger.total += amount
        ledger.by_category[category] += amount
        ledger.by_layer[layer] += amount
        if scope is not None:
            ledger.by_scope[(scope, layer)] += amount
        return amount

    def _propagate(self, amount: int) -> None:
        """Fold a charge into every ancestor meter (enforcing their limits)."""
        meter = self.parent
        while meter is not None:
            if meter.limit is not None and meter.used + amount > meter.limit:
                raise OutOfGasError(requested=amount, remaining=meter.limit - meter.used)
            meter.used += amount
            meter = meter.parent

    def refund(self, amount: int, layer: Optional[str] = None) -> int:
        """Credit a refund (only effective when the schedule enables refunds)."""
        if amount <= 0:
            return 0
        self.used = max(0, self.used - amount)
        meter = self.parent
        while meter is not None:
            meter.used = max(0, meter.used - amount)
            meter = meter.parent
        self.ledger.refund(amount, layer or self.layer, scope=self.scope)
        return amount

    @property
    def remaining(self) -> Optional[int]:
        if self.limit is None:
            return None
        return self.limit - self.used


@dataclass(slots=True)
class ExecutionContext:
    """Context threaded through contract calls within one transaction.

    Mirrors the pieces of the EVM environment GRuB's contracts need:
    ``msg.sender``, the gas meter, the block number/timestamp at execution
    time, and the list of log events emitted so far (flushed into the block's
    receipts when the transaction completes).
    """

    sender: str
    meter: GasMeter
    block_number: int = 0
    timestamp: float = 0.0
    value: int = 0
    call_depth: int = 0
    emitted: List["LogEvent"] = field(default_factory=list)  # noqa: F821 - forward ref

    def child(
        self,
        sender: str,
        layer: Optional[str] = None,
        scope: Optional[str] = None,
    ) -> "ExecutionContext":
        """Create the context for an internal call made by ``sender``.

        Internal calls share the same gas meter (the EVM model of a nested
        call within the same transaction) and inherit block metadata.  The
        attribution layer can be overridden so application callbacks charge to
        the application layer while the feed protocol charges to the feed
        layer; the attribution scope can be overridden so a gateway router
        dispatching a batched transaction bills each tenant's group to that
        tenant.
        """
        meter = self.meter
        new_layer = layer if layer is not None and layer != meter.layer else None
        new_scope = scope if scope is not None and scope != meter.scope else None
        if new_layer is not None or new_scope is not None:
            meter = GasMeter(
                schedule=self.meter.schedule,
                ledger=self.meter.ledger,
                limit=None,
                layer=layer if layer is not None else self.meter.layer,
                scope=scope if scope is not None else self.meter.scope,
                parent=self.meter,
            )
        return ExecutionContext(
            sender=sender,
            meter=meter,
            block_number=self.block_number,
            timestamp=self.timestamp,
            call_depth=self.call_depth + 1,
            emitted=self.emitted,
        )
