"""Base class for simulated smart contracts.

Contracts in the reproduction are Python classes deployed to a
:class:`~repro.chain.chain.Blockchain`.  A contract exposes public functions
as ordinary methods whose first parameter is the :class:`ExecutionContext`
carrying the gas meter; the chain invokes the method named by the incoming
transaction.  Internal (contract-to-contract) calls are plain method calls on
the callee's Python object, passed a child context so the gas accounting stays
within the same transaction, mirroring EVM internal calls.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.chain.events import LogEvent
from repro.chain.state import ContractStorage
from repro.chain.vm import ExecutionContext
from repro.common.errors import ContractError


class Contract:
    """A deployed contract with its own address and gas-metered storage."""

    def __init__(self, address: str) -> None:
        self.address = address
        self.storage = ContractStorage()
        self.chain: Optional["Blockchain"] = None  # noqa: F821 - set at deploy time

    # -- lifecycle ---------------------------------------------------------

    def on_deploy(self, chain: "Blockchain") -> None:  # noqa: F821
        """Hook invoked when the contract is registered with a chain."""
        self.chain = chain

    # -- EVM-style helpers -------------------------------------------------

    def emit(self, ctx: ExecutionContext, name: str, **payload: Any) -> None:
        """Emit a log event, charging LOG gas.

        The event is buffered in the execution context and flushed into the
        global event log when the enclosing transaction is included in a
        block, so off-chain watchdogs only ever observe events of committed
        transactions.
        """
        # Inlined fast path of _payload_size for the dominant argument types
        # (request events fire once per replica miss, the hot read path).
        data_bytes = 0
        for value in payload.values():
            kind = type(value)
            if kind is str:
                data_bytes += len(value.encode("utf-8"))
            elif kind is bytes:
                data_bytes += len(value)
            else:
                data_bytes += _payload_size(value)
        ctx.meter.charge(ctx.meter.schedule.log_cost(1, data_bytes), "log")
        ctx.emitted.append(
            LogEvent(
                contract=self.address,
                name=name,
                payload=dict(payload),
                block_number=ctx.block_number,
                transaction_index=-1,
                log_index=-1,
            )
        )

    def require(self, condition: bool, message: str) -> None:
        """Solidity-style ``require``: revert the call when ``condition`` fails."""
        if not condition:
            raise ContractError(f"{type(self).__name__}: {message}")

    def call_contract(
        self,
        ctx: ExecutionContext,
        callee: "Contract",
        function: str,
        layer: Optional[str] = None,
        scope: Optional[str] = None,
        **kwargs: Any,
    ) -> Any:
        """Perform an internal call to another deployed contract.

        ``layer`` and ``scope`` override the gas attribution of the nested
        call (application callbacks bill the application layer; a gateway
        router bills each tenant's group to that tenant's scope).
        """
        child = ctx.child(sender=self.address, layer=layer, scope=scope)
        child.meter.charge(child.meter.schedule.call_base, "call")
        method = getattr(callee, function, None)
        if method is None:
            raise ContractError(f"{callee.address} has no function {function!r}")
        return method(child, **kwargs)

    # -- introspection -----------------------------------------------------

    def public_functions(self) -> Dict[str, Any]:
        """Names of callable public functions (for the chain's dispatcher)."""
        return {
            name: getattr(self, name)
            for name in dir(self)
            if not name.startswith("_") and callable(getattr(self, name))
        }


def _payload_size(value: Any) -> int:
    """Approximate ABI-encoded size of one event argument in bytes.

    Checked most-common-type first: event payloads are dominated by string
    keys/addresses, then byte values (request/deliver events fire per miss).
    """
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, bool):
        return 32
    if isinstance(value, int):
        return 32
    if isinstance(value, (list, tuple)):
        return sum(_payload_size(item) for item in value)
    if isinstance(value, dict):
        return sum(_payload_size(item) for item in value.values())
    if value is None:
        return 0
    return 32
