"""Blocks for the simulated blockchain."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.chain.transaction import TransactionReceipt
from repro.common.hashing import hash_words


@dataclass
class Block:
    """A produced block: ordered receipts plus chain metadata."""

    number: int
    timestamp: float
    parent_hash: bytes
    receipts: List[TransactionReceipt] = field(default_factory=list)

    @property
    def gas_used(self) -> int:
        return sum(receipt.gas_used for receipt in self.receipts)

    @property
    def transaction_count(self) -> int:
        return len(self.receipts)

    @property
    def block_hash(self) -> bytes:
        """Digest over the block header fields and included transaction ids."""
        txids = b"".join(
            receipt.txid.to_bytes(8, "big") for receipt in self.receipts
        )
        return hash_words(self.number, self.parent_hash, int(self.timestamp * 1000), txids)
