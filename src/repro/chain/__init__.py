"""A gas-metered, Ethereum-like blockchain simulator.

This package is the on-chain substrate for the GRuB reproduction.  It models
exactly the parts of Ethereum that determine the paper's evaluation metric
(Gas) and protocol behaviour:

* a gas schedule matching Table 2 of the paper (:mod:`repro.chain.gas`),
* gas-metered contract storage with insert / update / delete / read pricing
  (:mod:`repro.chain.state`),
* transactions with intrinsic (base + calldata) gas (:mod:`repro.chain.transaction`),
* an append-only event log usable by off-chain watchdogs (:mod:`repro.chain.events`),
* block production, propagation delay and finality (:mod:`repro.chain.chain`),
* a Python ``Contract`` base class standing in for Solidity contracts
  (:mod:`repro.chain.contract`), and
* simple externally-owned accounts holding Ether for the application case
  studies (:mod:`repro.chain.accounts`).
"""

from repro.chain.gas import GasSchedule, GasLedger
from repro.chain.vm import GasMeter, ExecutionContext
from repro.chain.state import ContractStorage
from repro.chain.events import LogEvent, EventLog
from repro.chain.transaction import Transaction, TransactionReceipt
from repro.chain.block import Block
from repro.chain.chain import Blockchain, ChainParameters
from repro.chain.contract import Contract
from repro.chain.accounts import AccountRegistry

__all__ = [
    "GasSchedule",
    "GasLedger",
    "GasMeter",
    "ExecutionContext",
    "ContractStorage",
    "LogEvent",
    "EventLog",
    "Transaction",
    "TransactionReceipt",
    "Block",
    "Blockchain",
    "ChainParameters",
    "Contract",
    "AccountRegistry",
]
