"""EVM-style event log.

GRuB's read path relies on contract events: when a DU asks for a record that
is not replicated on chain, the storage-manager contract emits a ``request``
event; the storage provider runs an off-chain watchdog that tails the event
log and answers with a ``deliver`` transaction.  The simulator therefore keeps
an append-only, globally ordered event log that off-chain components can read
(without gas) and contracts can append to (with LOG gas pricing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class LogEvent:
    """One emitted event.

    Attributes:
        contract: address of the emitting contract.
        name: event name (the first topic in real EVM terms).
        payload: decoded event arguments.
        block_number: block the emitting transaction was included in.
        transaction_index: position of the transaction within the block.
        log_index: global position in the event log.
    """

    contract: str
    name: str
    payload: Dict[str, Any]
    block_number: int
    transaction_index: int
    log_index: int


class EventLog:
    """Append-only, globally ordered log of contract events."""

    def __init__(self) -> None:
        self._events: List[LogEvent] = []

    def append(
        self,
        contract: str,
        name: str,
        payload: Dict[str, Any],
        block_number: int,
        transaction_index: int,
    ) -> LogEvent:
        event = LogEvent(
            contract=contract,
            name=name,
            payload=dict(payload),
            block_number=block_number,
            transaction_index=transaction_index,
            log_index=len(self._events),
        )
        self._events.append(event)
        return event

    def append_event(
        self, event: LogEvent, block_number: int, transaction_index: int
    ) -> LogEvent:
        """Append a context-buffered event, re-stamped with its block position.

        Unlike :meth:`append` the payload dict is *shared* with the buffered
        event rather than copied: the payload was built privately by
        :meth:`~repro.chain.contract.Contract.emit` and every reader treats it
        as immutable, so the second copy (one per event, on the hot read path)
        bought nothing.
        """
        stamped = LogEvent(
            contract=event.contract,
            name=event.name,
            payload=event.payload,
            block_number=block_number,
            transaction_index=transaction_index,
            log_index=len(self._events),
        )
        self._events.append(stamped)
        return stamped

    def extend_unstamped(self, events: List[tuple], block_number: int) -> None:
        """Append wire-form ``(contract, name, payload)`` triples in order.

        The merge path for process-mode drive events: each triple becomes its
        final stamped :class:`LogEvent` directly — same stamps
        :meth:`append_event` would assign to an absorbed buffer event —
        without materialising the intermediate unstamped object first.
        """
        stamped = self._events
        for contract, name, payload in events:
            stamped.append(
                LogEvent(
                    contract=contract,
                    name=name,
                    payload=payload,
                    block_number=block_number,
                    transaction_index=0,
                    log_index=len(stamped),
                )
            )

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[LogEvent]:
        return iter(self._events)

    def since(self, log_index: int) -> List[LogEvent]:
        """Events with ``log_index >= log_index`` (what a watchdog polls)."""
        return self._events[log_index:]

    def filter(
        self,
        *,
        contract: Optional[str] = None,
        name: Optional[str] = None,
        since: int = 0,
    ) -> List[LogEvent]:
        """Filter events by contract and/or name, starting at ``since``."""
        result = []
        for event in self._events[since:]:
            if contract is not None and event.contract != contract:
                continue
            if name is not None and event.name != name:
                continue
            result.append(event)
        return result

    def latest(self, name: Optional[str] = None) -> Optional[LogEvent]:
        """Most recent event, optionally restricted to a name."""
        for event in reversed(self._events):
            if name is None or event.name == name:
                return event
        return None
