"""The blockchain simulator: transaction pool, block production, finality.

The chain executes transactions against deployed contracts, charging intrinsic
gas (base + calldata) and execution gas through the contract's own metered
operations.  Failed calls revert the target contract's storage, as the EVM
would, but still consume the gas charged up to the failure point.

Timing parameters follow the paper's consistency model (Section 3.4 /
Appendix E): block interval ``B``, propagation delay ``Pt`` and finality depth
``F``.  A transaction submitted at time ``t`` is included in the next produced
block and is *finalized* once ``F`` further blocks exist, i.e. at roughly
``t + Pt + B * F``; the helpers expose these timestamps so the consistency
theorems can be checked in tests.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.chain.block import Block
from repro.chain.contract import Contract
from repro.chain.events import EventLog, LogEvent
from repro.chain.gas import (
    GasLedger,
    GasSchedule,
    LAYER_FEED,
    ledger_from_wire,
    ledger_to_wire,
    split_transaction_cost,
)
from repro.chain.transaction import Transaction, TransactionReceipt
from repro.chain.vm import ExecutionContext, GasMeter
from repro.common.clock import SimulatedClock
from repro.common.errors import ContractError, OutOfGasError, ReproError
from repro.common.hashing import EMPTY_DIGEST


@dataclass(frozen=True)
class ChainParameters:
    """Timing and capacity parameters of the simulated chain.

    Defaults follow the paper: Ethereum block time 10–19 s (we use 14 s),
    finality after 250 blocks, and a 10M block gas limit.  The propagation
    delay ``Pt`` models how long a submitted transaction takes to reach all
    nodes.
    """

    block_interval: float = 14.0
    propagation_delay: float = 1.0
    finality_depth: int = 250
    block_gas_limit: int = 10_000_000
    default_gas_limit: Optional[int] = None


class _CallFrame:
    """A reusable internal-call envelope: one meter + context per attribution.

    ``execute_internal_call`` used to allocate a fresh :class:`GasMeter` and
    :class:`ExecutionContext` per call — the hottest allocation site of every
    benchmark (one per driven read).  A frame is cached per ``(layer, scope)``
    attribution and reused; ``busy`` guards against reentrant internal calls
    (a callback that issues another internal call under the same attribution
    falls back to a fresh allocation).  Meter ``used`` accumulates across
    reuses, which is harmless: internal calls carry no gas limit and their
    metered total is never read back — only the ledger attribution matters.
    """

    __slots__ = ("meter", "ctx", "busy")

    def __init__(self, meter: "GasMeter", ctx: "ExecutionContext") -> None:
        self.meter = meter
        self.ctx = ctx
        self.busy = False


@dataclass
class ExecutionBuffer:
    """Deferred side effects of internal calls executed in isolation.

    The parallel epoch engine drives independent shards concurrently, but the
    chain's gas ledger and event log are shared, globally ordered structures.
    A worker therefore executes its shard's internal calls inside
    :meth:`Blockchain.isolated_execution`, which routes every gas charge into
    this buffer's private ledger and every emitted event into its private
    list; the scheduler then merges the buffers back serially, in fixed shard
    order, via :meth:`Blockchain.absorb`.  Because gas accumulation is
    commutative and events keep their per-shard order, a run merged this way
    is bit-identical to a serial run of the same shard plan.

    Buffers also cross process boundaries (the process execution backend ships
    one per shard epoch): :meth:`to_wire` / :func:`buffer_from_wire` translate
    to and from plain data, so exactly the merge-relevant content crosses —
    the ledger counters and the events' replayable fields — and never the
    worker-local ``call_frames`` cache or event-log bookkeeping.
    """

    ledger: GasLedger = field(default_factory=GasLedger)
    events: List[LogEvent] = field(default_factory=list)
    #: Per-(layer, scope) reusable internal-call frames; worker-local, never
    #: merged or shipped.
    call_frames: Dict[tuple, _CallFrame] = field(default_factory=dict, repr=False)

    def to_wire(self) -> dict:
        """Plain-data form of the buffer (picklable, process-boundary safe).

        Events travel *unstamped* — ``(contract, name, payload)`` only.  All
        of a drive phase's events carry the chain height at the epoch start
        (nothing mines during a drive), so the receiving side supplies that
        one height when it rebuilds the buffer (:func:`buffer_from_wire`)
        rather than every event repeating it across the boundary.  This is
        also what lets process-mode workers run epochs *ahead* of the main
        chain's merge: the stamp is assigned at merge time from the main
        chain, so a worker never needs to know (or pad its local chain to)
        the main chain's height.
        """
        return {
            "ledger": ledger_to_wire(self.ledger),
            "events": [
                (event.contract, event.name, event.payload)
                for event in self.events
            ],
        }


def buffer_from_wire(payload: dict, *, block_number: int) -> ExecutionBuffer:
    """Rebuild an :class:`ExecutionBuffer` from :meth:`ExecutionBuffer.to_wire`,
    stamping every event with ``block_number`` (the absorbing chain's height
    at the epoch start — exactly the stamp a serial drive would have given)."""
    return ExecutionBuffer(
        ledger=ledger_from_wire(payload["ledger"]),
        events=[
            LogEvent(
                contract=contract,
                name=name,
                payload=event_payload,
                block_number=block_number,
                transaction_index=-1,
                log_index=-1,
            )
            for contract, name, event_payload in payload["events"]
        ],
    )


class Blockchain:
    """A single logical view of the blockchain shared by all simulated nodes.

    The paper assumes the blockchain itself is trusted (immutable,
    fork-consistent, Sybil-secure); the simulator therefore keeps one
    canonical history rather than modelling adversarial forks, but it does
    model the *latency* of inclusion and finality because the consistency
    guarantees depend on them.
    """

    def __init__(
        self,
        schedule: Optional[GasSchedule] = None,
        parameters: Optional[ChainParameters] = None,
        clock: Optional[SimulatedClock] = None,
    ) -> None:
        self.schedule = schedule or GasSchedule()
        self.parameters = parameters or ChainParameters()
        self.clock = clock or SimulatedClock()
        self.ledger = GasLedger()
        self.event_log = EventLog()
        self.contracts: Dict[str, Contract] = {}
        self.blocks: List[Block] = []
        self.pending: List[Transaction] = []
        self.receipts: Dict[int, TransactionReceipt] = {}
        self._isolation = threading.local()
        #: Optional :class:`repro.obs.Observability` hook (set by the hosting
        #: runtime).  Strictly observation-only: mine paths read the wall
        #: clock and bump counters through it, and nothing it records ever
        #: feeds back into execution, gas or state — which is why it is
        #: excluded from every fingerprint and every wire form.
        self.obs = None
        self._genesis()

    # -- isolated execution (parallel epoch engine) ---------------------------

    @contextmanager
    def isolated_execution(self) -> Iterator[ExecutionBuffer]:
        """Buffer this thread's internal-call side effects for a later merge.

        While the context is active, :meth:`execute_internal_call` on this
        thread charges gas to the buffer's private ledger and collects emitted
        events in the buffer instead of the global event log.  The chain's
        height, clock and contract storage are untouched by the buffering —
        only the two globally *ordered* structures are deferred — so per-feed
        contract state advances exactly as it would serially.  The caller must
        pass the buffer to :meth:`absorb` (in a deterministic order) before
        anything reads the ledger or polls the event log.
        """
        if getattr(self._isolation, "buffer", None) is not None:
            raise ReproError("isolated_execution contexts cannot be nested")
        buffer = ExecutionBuffer()
        self._isolation.buffer = buffer
        try:
            yield buffer
        finally:
            self._isolation.buffer = None

    def absorb(self, buffer: ExecutionBuffer) -> None:
        """Merge an isolation buffer's charges and events into the chain."""
        self.ledger.merge(buffer.ledger)
        for event in buffer.events:
            self.event_log.append_event(event, event.block_number, 0)
        buffer.events.clear()

    def absorb_wire(self, payload: dict, block_number: int) -> None:
        """Merge a wire-form drive buffer (:meth:`ExecutionBuffer.to_wire`).

        Equivalent to ``absorb(buffer_from_wire(payload, block_number=...))``
        but stamps each event exactly once — the intermediate unstamped
        :class:`LogEvent` the generic path builds and immediately replaces is
        the main process's single largest per-event merge cost.
        """
        self.ledger.merge(ledger_from_wire(payload["ledger"]))
        self.event_log.extend_unstamped(payload["events"], block_number)

    # -- deployment and lookup ----------------------------------------------

    def deploy(self, contract: Contract) -> Contract:
        """Register a contract at its address (idempotent per address)."""
        if contract.address in self.contracts:
            raise ReproError(f"address {contract.address} already in use")
        self.contracts[contract.address] = contract
        contract.on_deploy(self)
        return contract

    def undeploy(self, address: str) -> Contract:
        """Remove a contract from the chain (EVM ``selfdestruct`` analogue).

        History (blocks, receipts, events) is untouched; the address simply
        becomes free again — the gateway uses this when a hosted feed leaves,
        so a later tenant can reuse the feed id.
        """
        contract = self.get_contract(address)
        del self.contracts[address]
        return contract

    def get_contract(self, address: str) -> Contract:
        try:
            return self.contracts[address]
        except KeyError as exc:
            raise ReproError(f"no contract deployed at {address}") from exc

    # -- transaction lifecycle ------------------------------------------------

    def submit(self, transaction: Transaction) -> Transaction:
        """Queue a transaction for inclusion in the next block."""
        transaction.submitted_at = self.clock.now
        self.pending.append(transaction)
        return transaction

    def mine_block(self) -> Block:
        """Produce one block containing every pending transaction.

        The simulator's experiments control batching explicitly (the DO's
        epoch batcher and the SP's deliver batching), so a block simply takes
        the entire pending pool; the block gas limit is checked to surface
        configuration errors rather than to split blocks.
        """
        obs = self.obs
        started = obs.tracer.clock() if obs is not None else 0.0
        self.clock.advance(self.parameters.block_interval)
        parent_hash = self.blocks[-1].block_hash if self.blocks else EMPTY_DIGEST
        block = Block(
            number=len(self.blocks),
            timestamp=self.clock.now,
            parent_hash=parent_hash,
        )
        transactions, self.pending = self.pending, []
        for index, transaction in enumerate(transactions):
            receipt = self._execute(transaction, block.number, index)
            block.receipts.append(receipt)
            self.receipts[transaction.txid] = receipt
            for event in receipt.events:
                self.event_log.append_event(event, block.number, index)
        if block.gas_used > self.parameters.block_gas_limit:
            # Not fatal for experiments, but worth surfacing: the paper notes
            # throughput is bounded by the block gas limit.
            block_overflow = block.gas_used - self.parameters.block_gas_limit
            self.ledger.by_category["block_gas_limit_overflow"] += block_overflow
        self.blocks.append(block)
        if obs is not None:
            obs.counter("chain_blocks_total").inc()
            obs.counter("chain_transactions_total").inc(len(transactions))
            obs.histogram("chain_mine_seconds").observe(obs.tracer.clock() - started)
        return block

    def mine_recorded_block(
        self,
        transaction: Transaction,
        *,
        gas_used: int,
        success: bool,
        error: Optional[str] = None,
        events: Optional[List[tuple]] = None,
    ) -> Block:
        """Mine one block around a transaction that was executed elsewhere.

        The process execution backend runs each shard's settlement transaction
        inside the worker process that owns the shard's contracts; the main
        chain then records the outcome — clock advance, block production,
        receipt, event-log append with this block's stamps, block-gas-limit
        accounting — without re-executing anything.  ``events`` carries
        ``(contract, name, payload)`` tuples in emission order.  Gas *charges*
        are not applied here (the worker ships its ledger delta separately,
        via :meth:`absorb`); ``gas_used`` only feeds the receipt and the block
        gas accounting, exactly the quantities :meth:`mine_block` derives from
        local execution.

        The pending pool must be empty: mixing locally queued transactions
        into a recorded block would execute them against state the worker
        already advanced past.

        One documented divergence from locally executed settlement: the
        recorded receipt's ``transaction.args`` is whatever the caller put on
        the transaction stub (the process backend passes ``{}`` — the group
        payloads, with their Merkle proofs, stay in the worker that executed
        them).  The per-feed scope weights and calldata size *are* carried,
        so gas attribution and receipts' outcomes match exactly; only the
        argument payload of the receipt's transaction object differs from a
        serial run.
        """
        if self.pending:
            raise ReproError(
                "mine_recorded_block with locally pending transactions; "
                "recorded settlement cannot be mixed with local execution"
            )
        self.clock.advance(self.parameters.block_interval)
        parent_hash = self.blocks[-1].block_hash if self.blocks else EMPTY_DIGEST
        block = Block(
            number=len(self.blocks),
            timestamp=self.clock.now,
            parent_hash=parent_hash,
        )
        receipt_events = [
            LogEvent(
                contract=contract,
                name=name,
                payload=payload,
                block_number=block.number,
                transaction_index=0,
                log_index=-1,
            )
            for contract, name, payload in (events or [])
        ]
        finalized_at = (
            self.clock.now
            + self.parameters.propagation_delay
            + self.parameters.block_interval * self.parameters.finality_depth
        )
        receipt = TransactionReceipt(
            transaction=transaction,
            success=success,
            gas_used=gas_used,
            block_number=block.number,
            transaction_index=0,
            error=error,
            events=receipt_events,
            finalized_at=finalized_at,
        )
        block.receipts.append(receipt)
        self.receipts[transaction.txid] = receipt
        for event in receipt_events:
            self.event_log.append_event(event, block.number, 0)
        if block.gas_used > self.parameters.block_gas_limit:
            block_overflow = block.gas_used - self.parameters.block_gas_limit
            self.ledger.by_category["block_gas_limit_overflow"] += block_overflow
        self.blocks.append(block)
        if self.obs is not None:
            self.obs.counter("chain_blocks_total").inc()
            self.obs.counter("chain_transactions_total").inc()
        return block

    def mine_until_finalized(self, block_number: int) -> None:
        """Produce empty blocks until ``block_number`` is final."""
        while self.height < block_number + self.parameters.finality_depth:
            self.mine_block()

    def execute_call(
        self,
        sender: str,
        contract_address: str,
        function: str,
        *,
        layer: str = LAYER_FEED,
        gas_limit: Optional[int] = None,
        **kwargs: Any,
    ) -> Any:
        """Execute a read-only (eth_call style) contract invocation.

        Used by off-chain components to inspect contract state; it charges no
        gas to the global ledger because it runs locally on a full node.
        """
        contract = self.get_contract(contract_address)
        scratch_ledger = GasLedger()
        meter = GasMeter(schedule=self.schedule, ledger=scratch_ledger, limit=gas_limit, layer=layer)
        ctx = ExecutionContext(
            sender=sender,
            meter=meter,
            block_number=self.height,
            timestamp=self.clock.now,
        )
        method = getattr(contract, function)
        return method(ctx, **kwargs)

    def execute_internal_call(
        self,
        sender: str,
        contract_address: str,
        function: str,
        *,
        layer: str = LAYER_FEED,
        scope: Optional[str] = None,
        gas_limit: Optional[int] = None,
        **kwargs: Any,
    ) -> Any:
        """Execute a contract call as part of an already-paid-for transaction.

        This is how the experiment drivers model a DU read: the DU contract is
        being executed anyway inside an application transaction whose base
        cost is not attributable to the data feed, so the feed-layer gas of a
        read is the marginal gas of the ``gGet`` internal call.  The gas is
        charged to the chain's global ledger (billed to ``scope`` when given)
        and any emitted events are appended to the event log immediately (the
        enclosing transaction is committed within the current block).
        """
        contract = self.get_contract(contract_address)
        buffer: Optional[ExecutionBuffer] = getattr(self._isolation, "buffer", None)
        frame: Optional[_CallFrame] = None
        if gas_limit is None:
            # Hot path: reuse the cached call envelope for this attribution.
            # Frames live on the isolation buffer when one is active (buffers
            # are single-threaded by construction) and otherwise per thread,
            # so no frame is ever shared across threads.
            if buffer is not None:
                frames = buffer.call_frames
            else:
                frames = getattr(self._isolation, "call_frames", None)
                if frames is None:
                    frames = self._isolation.call_frames = {}
            frame = frames.get((layer, scope))
            if frame is None:
                meter = GasMeter(
                    schedule=self.schedule,
                    ledger=self.ledger if buffer is None else buffer.ledger,
                    layer=layer,
                    scope=scope,
                )
                ctx = ExecutionContext(sender=sender, meter=meter)
                frame = frames[(layer, scope)] = _CallFrame(meter, ctx)
            elif frame.busy:
                # Reentrant internal call under the same attribution: fall
                # back to a one-shot envelope rather than clobbering the
                # in-flight context.
                frame = None
        if frame is None:
            meter = GasMeter(
                schedule=self.schedule,
                ledger=self.ledger if buffer is None else buffer.ledger,
                limit=gas_limit,
                layer=layer,
                scope=scope,
            )
            ctx = ExecutionContext(
                sender=sender,
                meter=meter,
                block_number=self.height,
                timestamp=self.clock.now,
            )
            method = getattr(contract, function)
            result = method(ctx, **kwargs)
            emitted = ctx.emitted
        else:
            ctx = frame.ctx
            ctx.sender = sender
            ctx.block_number = self.height
            ctx.timestamp = self.clock.now
            frame.busy = True
            try:
                result = getattr(contract, function)(ctx, **kwargs)
            except BaseException:
                # A reverted call's events must never surface (a fresh
                # context used to drop them by going out of scope; the
                # reused frame has to drop them explicitly, or the next
                # call under this attribution would flush phantom events).
                ctx.emitted.clear()
                raise
            finally:
                frame.busy = False
            emitted = ctx.emitted
        if buffer is not None:
            if emitted:
                buffer.events.extend(emitted)
                emitted.clear()
            return result
        if emitted:
            height = self.height
            for event in emitted:
                self.event_log.append_event(event, height, 0)
            emitted.clear()
        return result

    # -- execution ------------------------------------------------------------

    def _execute(
        self, transaction: Transaction, block_number: int, index: int
    ) -> TransactionReceipt:
        contract = self.get_contract(transaction.contract)
        meter = GasMeter(
            schedule=self.schedule,
            ledger=self.ledger,
            limit=transaction.gas_limit or self.parameters.default_gas_limit,
            layer=transaction.layer,
            scope=transaction.scope,
        )
        ctx = ExecutionContext(
            sender=transaction.sender,
            meter=meter,
            block_number=block_number,
            timestamp=self.clock.now,
            value=transaction.value,
        )
        # Journal writes on every deployed contract, not just the target: the
        # target may fan out internal calls (callbacks, the gateway router's
        # batched groups), and a revert must undo those writes too, as the
        # EVM would.  Journalling is O(writes) per transaction; contracts the
        # transaction never touches only pay an empty begin/commit.
        for deployed in self.contracts.values():
            deployed.storage.begin_tx()
        error: Optional[str] = None
        return_value: Any = None
        success = True
        try:
            if transaction.scopes:
                # A batched gateway transaction: bill each served tenant its
                # calldata words plus an even share of the transaction base.
                shares = split_transaction_cost(self.schedule, transaction.scopes)
                for scope_name in sorted(shares):
                    meter.charge(shares[scope_name], "transaction", scope=scope_name)
            else:
                meter.charge(
                    self.schedule.transaction_cost(transaction.calldata_words),
                    "transaction",
                )
            method = getattr(contract, transaction.function, None)
            if method is None:
                raise ContractError(
                    f"{transaction.contract} has no function {transaction.function!r}"
                )
            return_value = method(ctx, **transaction.args)
        except (ContractError, OutOfGasError) as exc:
            success = False
            error = str(exc)
            for deployed in self.contracts.values():
                deployed.storage.rollback_tx()
            ctx.emitted.clear()
        finally:
            for deployed in self.contracts.values():
                deployed.storage.commit_tx()
        events = [
            LogEvent(
                contract=event.contract,
                name=event.name,
                payload=event.payload,
                block_number=block_number,
                transaction_index=index,
                log_index=-1,
            )
            for event in ctx.emitted
        ]
        finalized_at = (
            self.clock.now
            + self.parameters.propagation_delay
            + self.parameters.block_interval * self.parameters.finality_depth
        )
        return TransactionReceipt(
            transaction=transaction,
            success=success,
            gas_used=meter.used,
            block_number=block_number,
            transaction_index=index,
            return_value=return_value,
            error=error,
            events=events,
            finalized_at=finalized_at,
        )

    # -- chain state -----------------------------------------------------------

    @property
    def height(self) -> int:
        return len(self.blocks)

    @property
    def latest_block(self) -> Optional[Block]:
        return self.blocks[-1] if self.blocks else None

    def is_finalized(self, block_number: int) -> bool:
        """True once ``finality_depth`` blocks exist above ``block_number``."""
        return self.height - 1 - block_number >= self.parameters.finality_depth

    def finality_delay(self) -> float:
        """Worst-case delay from submission to finality: ``Pt + B * F``."""
        return (
            self.parameters.propagation_delay
            + self.parameters.block_interval * self.parameters.finality_depth
        )

    def receipt_for(self, txid: int) -> Optional[TransactionReceipt]:
        return self.receipts.get(txid)

    def _genesis(self) -> None:
        genesis = Block(number=0, timestamp=self.clock.now, parent_hash=EMPTY_DIGEST)
        self.blocks.append(genesis)
