"""Authenticated data structures (ADS) for the GRuB data plane.

The storage provider is untrusted: it may forge, replay, omit or fork the
records it delivers to the blockchain.  GRuB defends against this with a
Merkle tree built over the KV records, laid out as the paper describes
(Section 3.3 and Appendix B.1): records are first grouped by replication state
(NR group before R group) and sorted by data key within each group.  The data
owner keeps the root hash; the storage-manager contract holds a copy and
verifies every delivered record against it.

Modules:

* :mod:`repro.ads.merkle` — a generic Merkle tree with membership and range
  proofs over an ordered list of leaves,
* :mod:`repro.ads.authenticated_kv` — the GRuB-specific layout, update
  protocol (DO-side verification + root recomputation) and query proofs,
* :mod:`repro.ads.signer` — the DO's signature over published root hashes.
"""

from repro.ads.merkle import MerkleTree, MerkleProof, RangeProof, verify_membership, verify_range
from repro.ads.authenticated_kv import AuthenticatedKVStore, QueryResult, UpdateWitness
from repro.ads.signer import RootSigner, SignedRoot

__all__ = [
    "MerkleTree",
    "MerkleProof",
    "RangeProof",
    "verify_membership",
    "verify_range",
    "AuthenticatedKVStore",
    "QueryResult",
    "UpdateWitness",
    "RootSigner",
    "SignedRoot",
]
