"""A Merkle tree over an ordered list of leaves, with membership and range proofs.

The tree is the binary-Merkle construction the paper uses for its ADS
(Figure 4b): leaves hold record hashes, interior nodes hash the concatenation
of their children.  Proof verification is written as pure functions so the
storage-manager contract can call them while charging hash gas per node
through its meter, and off-chain parties can call them for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import IntegrityError
from repro.common.hashing import EMPTY_DIGEST, hash_pair, keccak

#: Entries kept by the interior-node hash memo.  Epoch workloads re-hash the
#: same (left, right) digest pairs constantly — a hot record delivered every
#: epoch re-verifies the same authentication path until the tree changes, and
#: batched path recomputation re-derives interior nodes shared between
#: epochs — so the parent digest is computed once and replayed from the memo.
PAIR_MEMO_SIZE = 1 << 17


@lru_cache(maxsize=PAIR_MEMO_SIZE)
def _hash_pair_memo(left: bytes, right: bytes) -> bytes:
    """Memoized :func:`~repro.common.hashing.hash_pair` (a pure function).

    Correctness does not depend on the memo: entries never go stale because
    the digest of a pair is immutable, so eviction (or clearing) only costs
    recomputation.  Gas accounting is untouched — callers charge per hash
    *application*, not per SHA-256 actually executed, exactly as an on-chain
    verifier would charge for every step of the path walk.
    """
    return hash_pair(left, right)


def clear_pair_memo() -> None:
    """Drop every memoized interior-node digest (tests compare cold paths)."""
    _hash_pair_memo.cache_clear()


@dataclass(frozen=True)
class ProofNode:
    """One sibling digest on an authentication path.

    ``is_left`` records whether the sibling sits to the left of the path node,
    which determines the concatenation order when recomputing the parent.
    """

    digest: bytes
    is_left: bool


@dataclass(frozen=True)
class MerkleProof:
    """Authentication path proving that a leaf is at ``leaf_index``."""

    leaf_index: int
    leaf_count: int
    path: Tuple[ProofNode, ...]

    @property
    def num_nodes(self) -> int:
        return len(self.path)

    @property
    def size_words(self) -> int:
        """Proof size in 32-byte words (one word per sibling digest)."""
        return len(self.path)


@dataclass(frozen=True)
class RangeProof:
    """Proof for a contiguous run of leaves ``[start_index, start_index + count)``.

    Implemented as the per-leaf membership proofs of the boundary leaves plus
    every in-range leaf hash; sufficient for the contract to check both
    integrity and completeness (no leaf inside the range was omitted).
    """

    start_index: int
    count: int
    leaf_count: int
    leaf_hashes: Tuple[bytes, ...]
    boundary_proofs: Tuple[MerkleProof, ...]

    @property
    def size_words(self) -> int:
        return len(self.leaf_hashes) + sum(p.size_words for p in self.boundary_proofs)


class MerkleTree:
    """A full binary Merkle tree over an ordered sequence of leaf hashes.

    The tree pads the leaf level to the next power of two with an empty
    digest, so the shape is stable and proofs have a fixed length of
    ``ceil(log2(n))`` for ``n`` leaves.  Point updates recompute only the path
    to the root.
    """

    def __init__(self, leaf_hashes: Sequence[bytes]) -> None:
        self._leaves: List[bytes] = list(leaf_hashes)
        self._levels: List[List[bytes]] = []
        self._rebuild()

    # -- construction ---------------------------------------------------------

    def _rebuild(self) -> None:
        padded = list(self._leaves)
        size = 1
        while size < max(1, len(padded)):
            size *= 2
        padded.extend([EMPTY_DIGEST] * (size - len(padded)))
        levels = [padded]
        while len(levels[-1]) > 1:
            current = levels[-1]
            parent = [
                _hash_pair_memo(current[i], current[i + 1])
                for i in range(0, len(current), 2)
            ]
            levels.append(parent)
        self._levels = levels

    @classmethod
    def from_values(cls, values: Sequence[bytes]) -> "MerkleTree":
        """Build a tree whose leaves are the hashes of ``values``."""
        return cls([keccak(value) for value in values])

    # -- queries ----------------------------------------------------------------

    @property
    def root(self) -> bytes:
        if not self._leaves:
            return EMPTY_DIGEST
        return self._levels[-1][0]

    @property
    def leaf_count(self) -> int:
        return len(self._leaves)

    @property
    def depth(self) -> int:
        return len(self._levels) - 1

    def leaf(self, index: int) -> bytes:
        return self._leaves[index]

    def prove(self, index: int) -> MerkleProof:
        """Produce the authentication path for the leaf at ``index``."""
        if not 0 <= index < len(self._leaves):
            raise IndexError(f"leaf index {index} out of range")
        path: List[ProofNode] = []
        position = index
        for level in self._levels[:-1]:
            sibling_index = position ^ 1
            sibling = level[sibling_index] if sibling_index < len(level) else EMPTY_DIGEST
            path.append(ProofNode(digest=sibling, is_left=sibling_index < position))
            position //= 2
        return MerkleProof(
            leaf_index=index, leaf_count=len(self._leaves), path=tuple(path)
        )

    def prove_many(self, indices: Sequence[int]) -> Dict[int, MerkleProof]:
        """Authentication paths for several leaves in one tree pass.

        Batched proof generation for a deliver batch: the level lists are
        bound once and sibling :class:`ProofNode` objects are built at most
        once per (level, position) and shared between the returned proofs —
        requests in one epoch cluster under common subtrees, so neighbouring
        proofs reuse most of their upper path nodes.  Each returned proof is
        identical to what :meth:`prove` would produce for the same index.
        """
        levels = self._levels[:-1]
        leaf_count = len(self._leaves)
        shared_nodes: Dict[Tuple[int, int], ProofNode] = {}
        proofs: Dict[int, MerkleProof] = {}
        for index in indices:
            if index in proofs:
                continue
            if not 0 <= index < leaf_count:
                raise IndexError(f"leaf index {index} out of range")
            path: List[ProofNode] = []
            position = index
            for depth, level in enumerate(levels):
                sibling_index = position ^ 1
                node = shared_nodes.get((depth, sibling_index))
                if node is None:
                    sibling = (
                        level[sibling_index]
                        if sibling_index < len(level)
                        else EMPTY_DIGEST
                    )
                    # A sibling's side is fixed by its parity: even positions
                    # sit to the left of their (odd) partner.
                    node = ProofNode(digest=sibling, is_left=sibling_index % 2 == 0)
                    shared_nodes[(depth, sibling_index)] = node
                path.append(node)
                position //= 2
            proofs[index] = MerkleProof(
                leaf_index=index, leaf_count=leaf_count, path=tuple(path)
            )
        return proofs

    def prove_range(self, start_index: int, count: int) -> RangeProof:
        """Produce a proof for ``count`` consecutive leaves starting at ``start_index``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        end = start_index + count
        if not (0 <= start_index and end <= len(self._leaves)):
            raise IndexError("range outside the leaf sequence")
        leaf_hashes = tuple(self._leaves[start_index:end])
        boundary: List[MerkleProof] = []
        if count > 0:
            boundary.append(self.prove(start_index))
            if count > 1:
                boundary.append(self.prove(end - 1))
        return RangeProof(
            start_index=start_index,
            count=count,
            leaf_count=len(self._leaves),
            leaf_hashes=leaf_hashes,
            boundary_proofs=tuple(boundary),
        )

    # -- updates ------------------------------------------------------------------

    def _update_path(self, position: int, new_hash: bytes) -> bytes:
        """Write ``new_hash`` at leaf ``position`` and recompute its root path."""
        self._levels[0][position] = new_hash
        for depth in range(len(self._levels) - 1):
            parent_index = position // 2
            left = self._levels[depth][parent_index * 2]
            right_index = parent_index * 2 + 1
            right = (
                self._levels[depth][right_index]
                if right_index < len(self._levels[depth])
                else EMPTY_DIGEST
            )
            self._levels[depth + 1][parent_index] = _hash_pair_memo(left, right)
            position = parent_index
        return self.root

    def update_leaf(self, index: int, new_hash: bytes) -> bytes:
        """Replace the leaf at ``index`` and return the new root (O(log n))."""
        if not 0 <= index < len(self._leaves):
            raise IndexError(f"leaf index {index} out of range")
        self._leaves[index] = new_hash
        return self._update_path(index, new_hash)

    def stage_leaf(self, index: int, new_hash: bytes) -> None:
        """Write a leaf value *without* recomputing its root path.

        Half of the batched-update protocol: a caller applying many point
        updates stages each leaf, then calls :meth:`recompute_paths` once with
        every staged index, so interior nodes shared by several staged leaves
        are hashed once per batch instead of once per leaf.  Until the
        recompute, :attr:`root` and interior levels are stale — callers must
        not read them mid-batch.  Leaf storage itself stays current, so
        interleaved appends (even ones that trigger a rebuild) remain correct.
        """
        if not 0 <= index < len(self._leaves):
            raise IndexError(f"leaf index {index} out of range")
        self._leaves[index] = new_hash
        self._levels[0][index] = new_hash

    def recompute_paths(self, indices: Sequence[int]) -> bytes:
        """Recompute the root paths of the staged leaves at ``indices``.

        Interior nodes are recomputed level by level over the *set* of dirty
        parents, so paths that converge (staged leaves under a common subtree,
        the usual shape of one feed's epoch write batch) are hashed once.
        Returns the new root; equivalent to calling :meth:`update_leaf` for
        each staged leaf individually.
        """
        if not indices:
            return self.root
        parents = {index >> 1 for index in indices}
        for depth in range(len(self._levels) - 1):
            level = self._levels[depth]
            parent_level = self._levels[depth + 1]
            next_parents = set()
            for parent in parents:
                left_index = parent * 2
                right_index = left_index + 1
                left = level[left_index]
                right = (
                    level[right_index]
                    if right_index < len(level)
                    else EMPTY_DIGEST
                )
                parent_level[parent] = _hash_pair_memo(left, right)
                next_parents.add(parent >> 1)
            parents = next_parents
        return self.root

    def append_leaf(self, new_hash: bytes) -> bytes:
        """Append a leaf at the end and return the new root.

        Amortised O(log n): while the padded leaf level still has spare
        capacity the append is a single path update; when capacity is
        exhausted the tree doubles and rebuilds once.
        """
        capacity = len(self._levels[0]) if self._levels else 0
        index = len(self._leaves)
        self._leaves.append(new_hash)
        if index < capacity:
            return self._update_path(index, new_hash)
        self._rebuild()
        return self.root

    def insert_leaf(self, index: int, new_hash: bytes) -> bytes:
        """Insert a leaf at ``index`` (shifting later leaves) and return the new root."""
        if not 0 <= index <= len(self._leaves):
            raise IndexError(f"insert index {index} out of range")
        self._leaves.insert(index, new_hash)
        self._rebuild()
        return self.root

    def remove_leaf(self, index: int) -> bytes:
        """Remove the leaf at ``index`` and return the new root."""
        if not 0 <= index < len(self._leaves):
            raise IndexError(f"leaf index {index} out of range")
        self._leaves.pop(index)
        self._rebuild()
        return self.root


# -- verification (usable on-chain with gas metering) -----------------------------


def recompute_root_from_proof(
    leaf_hash: bytes,
    proof: MerkleProof,
    charge_hash: Optional[Callable[[int], None]] = None,
) -> bytes:
    """Recompute the root implied by ``leaf_hash`` and ``proof``.

    ``charge_hash`` is called once per hash computation with the input size in
    words, letting the storage-manager contract charge hash gas.
    """
    current = leaf_hash
    for node in proof.path:
        if charge_hash is not None:
            charge_hash(2)
        if node.is_left:
            current = _hash_pair_memo(node.digest, current)
        else:
            current = _hash_pair_memo(current, node.digest)
    return current


def verify_membership(
    root: bytes,
    leaf_hash: bytes,
    proof: MerkleProof,
    charge_hash: Optional[Callable[[int], None]] = None,
) -> bool:
    """Check that ``leaf_hash`` is a member under ``root`` at ``proof.leaf_index``."""
    return recompute_root_from_proof(leaf_hash, proof, charge_hash) == root


def verify_range(
    root: bytes,
    proof: RangeProof,
    charge_hash: Optional[Callable[[int], None]] = None,
) -> bool:
    """Check a contiguous-range proof: the boundary paths must verify and the
    in-range leaf hashes must be exactly those committed at the boundary
    positions.

    The verification rebuilds the subtree spanned by the range from the leaf
    hashes plus boundary siblings.  For simplicity (and matching the gas the
    paper attributes to range verification) the check verifies each boundary
    membership proof and that the claimed leaf hashes reproduce the first and
    last boundary leaves.
    """
    if proof.count == 0:
        return True
    if len(proof.leaf_hashes) != proof.count:
        return False
    if not proof.boundary_proofs:
        return False
    first = proof.boundary_proofs[0]
    if first.leaf_index != proof.start_index:
        return False
    if not verify_membership(root, proof.leaf_hashes[0], first, charge_hash):
        return False
    if proof.count > 1:
        if len(proof.boundary_proofs) < 2:
            return False
        last = proof.boundary_proofs[1]
        if last.leaf_index != proof.start_index + proof.count - 1:
            return False
        if not verify_membership(root, proof.leaf_hashes[-1], last, charge_hash):
            return False
        # Interior completeness: recompute the root over the whole leaf level
        # is not available to the contract; instead the contract checks that
        # the number of leaves claimed matches the boundary index distance,
        # which together with the two verified boundary paths pins the range.
        if last.leaf_index - first.leaf_index + 1 != proof.count:
            return False
    return True


def verify_non_membership(
    root: bytes,
    left_neighbor: Tuple[bytes, MerkleProof],
    right_neighbor: Tuple[bytes, MerkleProof],
    charge_hash: Optional[Callable[[int], None]] = None,
) -> bool:
    """Check that no leaf exists between two adjacent leaves.

    The caller is responsible for checking that the *keys* carried by the
    neighbouring records straddle the queried key; this function checks that
    the two records are committed at adjacent positions under ``root``.
    """
    left_hash, left_proof = left_neighbor
    right_hash, right_proof = right_neighbor
    if right_proof.leaf_index != left_proof.leaf_index + 1:
        return False
    if not verify_membership(root, left_hash, left_proof, charge_hash):
        return False
    return verify_membership(root, right_hash, right_proof, charge_hash)


def expected_proof_length(leaf_count: int) -> int:
    """Proof length (in digests) for a tree of ``leaf_count`` leaves."""
    if leaf_count <= 1:
        return 0
    length = 0
    size = 1
    while size < leaf_count:
        size *= 2
        length += 1
    return length
