"""The GRuB authenticated KV store maintained by the storage provider.

The storage provider keeps the primary copy of every record in its KV store,
under a key prefixed with the record's replication state, and maintains a
Merkle tree over the records.  The data owner mirrors the layout (it is
trusted and produces every update), so it can verify the SP's proofs against
its own root hash before publishing a new signed root.

Three flows are implemented here:

* **update** (write path, step w1) — the DO asks the SP for an update witness
  (the proof of the record's current leaf), verifies it, applies the update
  locally and recomputes the new root.
* **query** (read path, step r2) — the SP produces the matching records plus a
  proof for the storage-manager contract to verify (step r3).
* **state transition** — when the control plane flips a record's replication
  state the record's leaf hash changes (the R/NR prefix is part of the
  authenticated payload), which changes the root.

Deviation from the paper's physical layout, documented in DESIGN.md: the paper
physically orders leaves by (replication-state group, key) and relocates a
record between groups on a state transition.  This implementation keeps a
*stable physical slot* per record and authenticates the replication state
inside the leaf hash instead, so a state transition is a single O(log n) leaf
update rather than a delete + insert.  The security argument is unchanged
(the state bit is still bound to the record under the signed root) and the
proof sizes — which are what the gas accounting depends on — are identical
(⌈log2 n⌉ sibling digests).  The logical key-sorted view used for range
queries is maintained separately.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ads.merkle import (
    MerkleProof,
    MerkleTree,
    expected_proof_length,
    verify_membership,
)
from repro.common.errors import IntegrityError, StorageError
from repro.common.hashing import hash_record, keccak
from repro.common.types import KVRecord, ReplicationState
from repro.storage.kvstore import InMemoryKVStore, KVStore

#: Leaf hash stored in slots whose record has been deleted.  Distinct from any
#: real record hash because record hashes are length-prefixed field hashes.
TOMBSTONE_LEAF = keccak(b"grub-tombstone-leaf")


@dataclass(frozen=True)
class QueryResult:
    """What the SP returns for a gGet on a non-replicated record.

    Contains the matching record (or ``None`` for a miss), its Merkle proof,
    and the root the proof was generated against (the contract ignores the
    claimed root and verifies against its own stored digest).
    """

    key: str
    record: Optional[KVRecord]
    proof: Optional[MerkleProof]
    root: bytes

    @property
    def proof_words(self) -> int:
        return self.proof.size_words if self.proof is not None else 0

    @property
    def payload_words(self) -> int:
        record_words = self.record.size_words if self.record is not None else 0
        return record_words + self.proof_words


@dataclass(frozen=True)
class UpdateWitness:
    """Proof material the SP hands the DO before an update (write path w1)."""

    key: str
    existing: Optional[KVRecord]
    proof: Optional[MerkleProof]
    leaf_index: Optional[int]
    root: bytes


@dataclass
class AuthenticatedKVStore:
    """The SP-side store: primary KV copy plus the Merkle tree over it.

    The class is also reused by the DO as its trusted local mirror (the DO
    needs the same layout to recompute roots); the two instances stay in sync
    because every update flows through the DO.
    """

    backing: KVStore = field(default_factory=InMemoryKVStore)
    _records: Dict[str, KVRecord] = field(default_factory=dict)
    _slot_of: Dict[str, int] = field(default_factory=dict)
    _slots: List[Optional[str]] = field(default_factory=list)
    _free_slots: List[int] = field(default_factory=list)
    _sorted_keys: List[str] = field(default_factory=list)
    _tree: MerkleTree = field(default_factory=lambda: MerkleTree([]))
    #: Keys currently in the R state, maintained incrementally so the per-epoch
    #: control-plane run is O(replicated) instead of an O(n) scan of the store.
    _replicated_keys: set = field(default_factory=set)

    # -- bulk loading -------------------------------------------------------

    def load(self, records: Sequence[KVRecord]) -> bytes:
        """Replace the store's contents with ``records`` and return the new root."""
        self._records = {record.key: record for record in records}
        self._sorted_keys = sorted(self._records)
        self._slots = [record.key for record in records]
        self._slot_of = {record.key: index for index, record in enumerate(records)}
        self._free_slots = []
        self._replicated_keys = {
            record.key
            for record in records
            if record.state is ReplicationState.REPLICATED
        }
        for record in records:
            self.backing.put(record.prefixed_key, record.value)
        self._tree = MerkleTree([self._leaf_hash(record) for record in records])
        return self.root

    # -- lookups ------------------------------------------------------------

    @property
    def root(self) -> bytes:
        return self._tree.root

    def __len__(self) -> int:
        return len(self._records)

    def get_record(self, key: str) -> Optional[KVRecord]:
        return self._records.get(key)

    def records(self) -> List[KVRecord]:
        """All records sorted by data key."""
        return [self._records[key] for key in self._sorted_keys]

    def replicated_records(self) -> List[KVRecord]:
        """Records in the R state, key-sorted; O(replicated), not O(n)."""
        return [self._records[key] for key in sorted(self._replicated_keys)]

    def replicated_keys(self) -> List[str]:
        """Key-sorted keys currently in the R state (no record objects built)."""
        return sorted(self._replicated_keys)

    def keys(self) -> List[str]:
        return list(self._sorted_keys)

    def select_keys(self, start_key: str, count: int) -> List[str]:
        """Up to ``count`` consecutive keys starting at ``start_key``.

        A bisect into the maintained sorted-key view — scan drivers previously
        copied the entire key list per scan operation to do this.
        """
        start = bisect.bisect_left(self._sorted_keys, start_key)
        return self._sorted_keys[start : start + count]

    def proof_length(self) -> int:
        """Current proof length in digests (grows with the dataset size)."""
        return expected_proof_length(max(1, len(self._slots)))

    # -- write path (DO <-> SP) ------------------------------------------------

    def update_witness(self, key: str) -> UpdateWitness:
        """Produce the witness the DO verifies before applying an update (w1)."""
        record = self._records.get(key)
        if record is None:
            return UpdateWitness(
                key=key, existing=None, proof=None, leaf_index=None, root=self.root
            )
        index = self._slot_of[key]
        return UpdateWitness(
            key=key,
            existing=record,
            proof=self._tree.prove(index),
            leaf_index=index,
            root=self.root,
        )

    def verify_witness(self, witness: UpdateWitness, trusted_root: bytes) -> None:
        """DO-side check of an update witness against the DO's trusted root."""
        if witness.existing is None:
            # Nothing to verify for a fresh insert; the DO knows its own root.
            return
        if witness.proof is None:
            raise IntegrityError(f"witness for {witness.key!r} is missing its proof")
        leaf = self._leaf_hash(witness.existing)
        if not verify_membership(trusted_root, leaf, witness.proof):
            raise IntegrityError(
                f"update witness for key {witness.key!r} does not verify against the trusted root"
            )

    def apply_update(
        self,
        key: str,
        value: bytes,
        state: Optional[ReplicationState] = None,
    ) -> bytes:
        """Insert or update ``key`` (optionally moving it to ``state``) and return the new root."""
        existing = self._records.get(key)
        if existing is None:
            new_state = state or ReplicationState.NOT_REPLICATED
            record = KVRecord(key=key, value=value, state=new_state, version=0)
            self._insert_record(record)
        else:
            new_state = state or existing.state
            record = KVRecord(
                key=key, value=value, state=new_state, version=existing.version + 1
            )
            self._replace_record(existing, record)
        return self.root

    def apply_updates(
        self,
        updates: Sequence[Tuple[str, bytes, Optional[ReplicationState]]],
    ) -> bytes:
        """Apply a batch of ``(key, value, state)`` updates in one tree pass.

        Equivalent to calling :meth:`apply_update` per tuple in order, but
        leaf replacements are staged and their root paths recomputed once via
        :meth:`MerkleTree.recompute_paths` — a feed's epoch write batch
        typically clusters under shared subtrees, so the shared interior
        hashes are computed once per batch.  Fresh inserts take the normal
        incremental path (leaf storage stays current throughout, so the mix
        is safe).  Returns the new root.
        """
        staged: List[int] = []
        for key, value, state in updates:
            existing = self._records.get(key)
            if existing is None:
                new_state = state or ReplicationState.NOT_REPLICATED
                self._insert_record(
                    KVRecord(key=key, value=value, state=new_state, version=0)
                )
                continue
            new_state = state or existing.state
            record = KVRecord(
                key=key, value=value, state=new_state, version=existing.version + 1
            )
            slot = self._slot_of[key]
            self._records[key] = record
            if new_state is ReplicationState.REPLICATED:
                self._replicated_keys.add(key)
            else:
                self._replicated_keys.discard(key)
            if existing.prefixed_key != record.prefixed_key:
                self.backing.delete(existing.prefixed_key)
            self.backing.put(record.prefixed_key, record.value)
            self._tree.stage_leaf(slot, self._leaf_hash(record))
            staged.append(slot)
        self._tree.recompute_paths(staged)
        return self.root

    def apply_state_transition(self, key: str, new_state: ReplicationState) -> bytes:
        """Re-authenticate ``key`` under ``new_state`` and return the new root."""
        existing = self._records.get(key)
        if existing is None:
            raise StorageError(f"cannot change state of unknown key {key!r}")
        if existing.state is new_state:
            return self.root
        self._replace_record(existing, existing.with_state(new_state))
        return self.root

    def delete(self, key: str) -> bytes:
        """Remove ``key`` entirely and return the new root."""
        existing = self._records.get(key)
        if existing is None:
            return self.root
        slot = self._slot_of.pop(key)
        self._slots[slot] = None
        self._free_slots.append(slot)
        del self._records[key]
        self._replicated_keys.discard(key)
        index = bisect.bisect_left(self._sorted_keys, key)
        if index < len(self._sorted_keys) and self._sorted_keys[index] == key:
            self._sorted_keys.pop(index)
        self.backing.delete(existing.prefixed_key)
        self._tree.update_leaf(slot, TOMBSTONE_LEAF)
        return self.root

    # -- read path (SP -> chain) ---------------------------------------------------

    def query(self, key: str) -> QueryResult:
        """Produce the record + proof for a gGet on a (typically NR) record."""
        record = self._records.get(key)
        if record is None:
            return QueryResult(key=key, record=None, proof=None, root=self.root)
        index = self._slot_of[key]
        return QueryResult(
            key=key, record=record, proof=self._tree.prove(index), root=self.root
        )

    def query_many(self, keys: Sequence[str]) -> Dict[str, QueryResult]:
        """Produce records + proofs for several keys in one batched tree pass.

        Used by the SP when answering an epoch's deliver batch: instead of
        one :meth:`query` (and one root-path walk) per requested record, all
        proofs are generated by :meth:`MerkleTree.prove_many`, which shares
        the sibling digests common to the batch.  Each result is identical to
        what :meth:`query` would return for the same key against the same
        root.
        """
        results: Dict[str, QueryResult] = {}
        present: Dict[str, int] = {}
        root = self.root
        for key in keys:
            if key in results or key in present:
                continue
            record = self._records.get(key)
            if record is None:
                results[key] = QueryResult(key=key, record=None, proof=None, root=root)
            else:
                present[key] = self._slot_of[key]
        proofs = self._tree.prove_many(list(present.values()))
        for key, index in present.items():
            results[key] = QueryResult(
                key=key, record=self._records[key], proof=proofs[index], root=root
            )
        return results

    def query_range(self, start_key: str, end_key: str) -> List[QueryResult]:
        """Per-record proofs for every NR record with key in ``[start_key, end_key]``."""
        start = bisect.bisect_left(self._sorted_keys, start_key)
        results: List[QueryResult] = []
        for key in self._sorted_keys[start:]:
            if key > end_key:
                break
            record = self._records[key]
            if record.state is not ReplicationState.NOT_REPLICATED:
                continue
            results.append(self.query(key))
        return results

    def scan(self, start_key: str, count: int) -> List[QueryResult]:
        """Proofs for ``count`` consecutive keys starting at ``start_key`` (YCSB E)."""
        start = bisect.bisect_left(self._sorted_keys, start_key)
        results: List[QueryResult] = []
        for key in self._sorted_keys[start : start + count]:
            results.append(self.query(key))
        return results

    @staticmethod
    def leaf_hash_for(record: KVRecord) -> bytes:
        """The leaf-hash convention shared with the on-chain verifier."""
        return hash_record(record.key, record.value, record.state.prefix)

    # -- internal layout maintenance -------------------------------------------------

    def _leaf_hash(self, record: KVRecord) -> bytes:
        return self.leaf_hash_for(record)

    def _insert_record(self, record: KVRecord) -> None:
        bisect.insort(self._sorted_keys, record.key)
        self._records[record.key] = record
        if record.state is ReplicationState.REPLICATED:
            self._replicated_keys.add(record.key)
        self.backing.put(record.prefixed_key, record.value)
        if self._free_slots:
            slot = self._free_slots.pop()
            self._slots[slot] = record.key
            self._tree.update_leaf(slot, self._leaf_hash(record))
        else:
            slot = len(self._slots)
            self._slots.append(record.key)
            self._tree.append_leaf(self._leaf_hash(record))
        self._slot_of[record.key] = slot

    def _replace_record(self, old: KVRecord, new: KVRecord) -> None:
        slot = self._slot_of[old.key]
        self._records[new.key] = new
        if new.state is ReplicationState.REPLICATED:
            self._replicated_keys.add(new.key)
        else:
            self._replicated_keys.discard(new.key)
        if old.prefixed_key != new.prefixed_key:
            self.backing.delete(old.prefixed_key)
        self.backing.put(new.prefixed_key, new.value)
        self._tree.update_leaf(slot, self._leaf_hash(new))
