"""Data-owner signatures over published root hashes.

For freshness, the data owner periodically publishes a signed root hash; the
storage-manager contract stores the latest digest and only accepts records
whose proofs verify against it.  The signature here is an HMAC keyed by the
DO's secret — the protocol only needs unforgeability by the SP, which the HMAC
provides in the simulation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.common.errors import IntegrityError
from repro.common.hashing import sign_digest, verify_signature


@dataclass(frozen=True)
class SignedRoot:
    """A root hash together with the DO's signature and a monotonic epoch number."""

    root: bytes
    signature: bytes
    epoch: int

    @property
    def size_words(self) -> int:
        """On-chain size: one word for the root plus one for the signature."""
        return 2


class RootSigner:
    """Holds the DO's signing secret and produces/verifies signed roots."""

    def __init__(self, secret: bytes | None = None) -> None:
        self._secret = secret if secret is not None else os.urandom(32)
        self._epoch = 0

    def sign(self, root: bytes) -> SignedRoot:
        """Sign ``root``, stamping it with the next epoch number."""
        self._epoch += 1
        return SignedRoot(root=root, signature=sign_digest(self._secret, root), epoch=self._epoch)

    def verify(self, signed: SignedRoot) -> bool:
        """Return whether ``signed`` was produced by this signer."""
        return verify_signature(self._secret, signed.root, signed.signature)

    def require_valid(self, signed: SignedRoot) -> None:
        """Raise :class:`IntegrityError` unless the signature verifies."""
        if not self.verify(signed):
            raise IntegrityError("root hash signature does not verify")

    @property
    def current_epoch(self) -> int:
        return self._epoch
