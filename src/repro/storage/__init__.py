"""Off-chain storage substrate: an LSM-tree key-value store.

The paper's prototype persists the primary data copy in Google LevelDB on the
untrusted storage provider.  This package provides a from-scratch stand-in
with the same operational surface — ``get``, ``put``, ``delete``, ``scan`` and
ordered iteration — built the way LevelDB is built: an in-memory memtable that
flushes into immutable sorted string tables (SSTables), with background
compaction merging tables and discarding shadowed versions and tombstones.

A simpler :class:`InMemoryKVStore` with the same interface is also provided
for fast unit tests and experiments where persistence behaviour is not under
test.
"""

from repro.storage.kvstore import KVStore, InMemoryKVStore
from repro.storage.memtable import MemTable
from repro.storage.sstable import SSTable
from repro.storage.lsm import LSMStore, LSMConfig

__all__ = [
    "KVStore",
    "InMemoryKVStore",
    "MemTable",
    "SSTable",
    "LSMStore",
    "LSMConfig",
]
