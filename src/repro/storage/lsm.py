"""The LSM-tree key-value store (LevelDB stand-in).

Writes land in a memtable (optionally mirrored into a write-ahead log);
when the memtable exceeds a threshold it is frozen into an immutable SSTable.
Reads consult the memtable first, then SSTables newest-to-oldest.  When the
number of tables exceeds a threshold a compaction merges them, discarding
shadowed versions and — on major compactions — tombstones.

The store can run purely in memory (``directory=None``) or persist its tables
and WAL under a directory so it can be reopened, which is what the storage
provider in the paper would use LevelDB for.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.common.errors import StorageError
from repro.storage.kvstore import KVStore
from repro.storage.memtable import TOMBSTONE, MemTable
from repro.storage.sstable import SSTable, merge_tables


@dataclass(frozen=True)
class LSMConfig:
    """Tuning knobs of the LSM store."""

    memtable_flush_bytes: int = 64 * 1024
    max_sstables_before_compaction: int = 4
    write_ahead_log: bool = True


class LSMStore(KVStore):
    """A log-structured merge-tree store with the :class:`KVStore` interface."""

    #: Optional :class:`repro.obs.Observability` hook (set by the hosting
    #: runtime).  Observation-only: flush/compaction decisions depend solely
    #: on memtable size and table count, never on anything recorded here.
    obs = None

    def __init__(
        self,
        directory: Optional[Path] = None,
        config: Optional[LSMConfig] = None,
    ) -> None:
        self.config = config or LSMConfig()
        self.directory = Path(directory) if directory is not None else None
        self.memtable = MemTable()
        self.sstables: List[SSTable] = []
        self.flushes = 0
        self.compactions = 0
        self._wal_path = (
            self.directory / "wal.log" if self.directory is not None else None
        )
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._recover()

    # -- KVStore interface ----------------------------------------------------

    def get(self, key: str) -> Optional[bytes]:
        found, value = self.memtable.get(key)
        if found:
            return value
        for table in sorted(self.sstables, key=lambda t: t.sequence, reverse=True):
            found, value = table.get(key)
            if found:
                return value
        return None

    def put(self, key: str, value: bytes) -> None:
        if not isinstance(value, bytes):
            raise StorageError(f"values must be bytes, got {type(value).__name__}")
        self._log_wal("put", key, value)
        self.memtable.put(key, value)
        self._maybe_flush()

    def delete(self, key: str) -> bool:
        existed = self.get(key) is not None
        self._log_wal("delete", key, None)
        self.memtable.delete(key)
        self._maybe_flush()
        return existed

    def scan(
        self,
        start_key: str,
        end_key: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Tuple[str, bytes]]:
        if limit is not None and limit <= 0:
            return []
        result: List[Tuple[str, bytes]] = []
        for key, value in self.items():
            if key < start_key:
                continue
            if end_key is not None and key >= end_key:
                break
            result.append((key, value))
            if limit is not None and len(result) >= limit:
                break
        return result

    def items(self) -> Iterator[Tuple[str, bytes]]:
        merged: dict = {}
        for table in sorted(self.sstables, key=lambda t: t.sequence):
            for key, value in table.items():
                merged[key] = value
        for key, value in self.memtable.items():
            merged[key] = None if value is TOMBSTONE else value
        for key in sorted(merged):
            value = merged[key]
            if value is not None:
                yield key, value

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    # -- LSM mechanics ----------------------------------------------------------

    def flush(self) -> Optional[SSTable]:
        """Freeze the current memtable into a new SSTable (no-op when empty)."""
        if self.memtable.is_empty:
            return None
        obs = self.obs
        started = obs.tracer.clock() if obs is not None else 0.0
        table = SSTable.from_memtable_items(self.memtable.items(), TOMBSTONE)
        self.sstables.append(table)
        self.memtable = MemTable()
        self.flushes += 1
        if self.directory is not None:
            table.write_to(self.directory / f"sstable-{table.sequence:08d}.sst")
            self._truncate_wal()
        if obs is not None:
            obs.counter("lsm_flushes_total").inc()
            obs.histogram("lsm_flush_seconds").observe(obs.tracer.clock() - started)
        self._maybe_compact()
        return table

    def compact(self) -> SSTable:
        """Merge every SSTable into one (a major compaction)."""
        if not self.sstables:
            raise StorageError("nothing to compact")
        obs = self.obs
        started = obs.tracer.clock() if obs is not None else 0.0
        merged = merge_tables(self.sstables, drop_tombstones=True)
        if self.directory is not None:
            for table in self.sstables:
                candidate = self.directory / f"sstable-{table.sequence:08d}.sst"
                if candidate.exists():
                    candidate.unlink()
            merged.write_to(self.directory / f"sstable-{merged.sequence:08d}.sst")
        self.sstables = [merged]
        self.compactions += 1
        if obs is not None:
            obs.counter("lsm_compactions_total").inc()
            obs.histogram("lsm_compact_seconds").observe(obs.tracer.clock() - started)
        return merged

    def _maybe_flush(self) -> None:
        if self.memtable.approximate_size_bytes >= self.config.memtable_flush_bytes:
            self.flush()

    def _maybe_compact(self) -> None:
        if len(self.sstables) > self.config.max_sstables_before_compaction:
            self.compact()

    # -- durability --------------------------------------------------------------

    def _log_wal(self, op: str, key: str, value: Optional[bytes]) -> None:
        if self._wal_path is None or not self.config.write_ahead_log:
            return
        entry = {
            "op": op,
            "key": key,
            "value": value.hex() if value is not None else None,
        }
        with self._wal_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry) + "\n")

    def _truncate_wal(self) -> None:
        if self._wal_path is not None and self._wal_path.exists():
            self._wal_path.unlink()

    def _recover(self) -> None:
        """Reload SSTables and replay the WAL after reopening a directory."""
        assert self.directory is not None
        for path in sorted(self.directory.glob("sstable-*.sst")):
            self.sstables.append(SSTable.read_from(path))
        if self._wal_path is not None and self._wal_path.exists():
            with self._wal_path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    entry = json.loads(line)
                    if entry["op"] == "put":
                        self.memtable.put(entry["key"], bytes.fromhex(entry["value"]))
                    else:
                        self.memtable.delete(entry["key"])
