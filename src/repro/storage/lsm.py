"""The LSM-tree key-value store (LevelDB stand-in).

Writes land in a memtable (optionally mirrored into a write-ahead log);
when the memtable exceeds a threshold it is frozen into an immutable SSTable.
Reads consult the memtable first, then SSTables newest-to-oldest.  When the
number of tables exceeds a threshold a compaction merges them, discarding
shadowed versions and — on major compactions — tombstones.

The store can run purely in memory (``directory=None``) or persist its tables
and WAL under a directory so it can be reopened, which is what the storage
provider in the paper would use LevelDB for.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.common.errors import StorageError
from repro.storage.kvstore import KVStore
from repro.storage.memtable import TOMBSTONE, MemTable
from repro.storage.sstable import SSTable, merge_tables


@dataclass(frozen=True)
class LSMConfig:
    """Tuning knobs of the LSM store."""

    memtable_flush_bytes: int = 64 * 1024
    max_sstables_before_compaction: int = 4
    write_ahead_log: bool = True


class LSMStore(KVStore):
    """A log-structured merge-tree store with the :class:`KVStore` interface."""

    #: Optional :class:`repro.obs.Observability` hook (set by the hosting
    #: runtime).  Observation-only: flush/compaction decisions depend solely
    #: on memtable size and table count, never on anything recorded here.
    obs = None

    def __init__(
        self,
        directory: Optional[Path] = None,
        config: Optional[LSMConfig] = None,
        *,
        exclusive: bool = False,
    ) -> None:
        self.config = config or LSMConfig()
        self.directory = Path(directory) if directory is not None else None
        #: Single-opener enforcement: an exclusive store holds a ``LOCK`` file
        #: (containing its PID) in the directory for as long as it is open.  A
        #: second exclusive opener fails loudly instead of interleaving WALs;
        #: a lock whose holder is dead is stolen (crash recovery).  The feed
        #: gateway opens every feed store exclusively, which is what makes
        #: cross-process feed migration safe: the source lane must ``close()``
        #: before the destination lane may open the same directory.
        self.exclusive = exclusive
        #: A closed store rejects mutations until :meth:`reopen`.
        self.closed = False
        self.memtable = MemTable()
        self.sstables: List[SSTable] = []
        self.flushes = 0
        self.compactions = 0
        self._wal_path = (
            self.directory / "wal.log" if self.directory is not None else None
        )
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._acquire_lock()
            self._recover()

    # -- KVStore interface ----------------------------------------------------

    def get(self, key: str) -> Optional[bytes]:
        found, value = self.memtable.get(key)
        if found:
            return value
        for table in sorted(self.sstables, key=lambda t: t.sequence, reverse=True):
            found, value = table.get(key)
            if found:
                return value
        return None

    def put(self, key: str, value: bytes) -> None:
        if not isinstance(value, bytes):
            raise StorageError(f"values must be bytes, got {type(value).__name__}")
        self._check_open()
        self._log_wal("put", key, value)
        self.memtable.put(key, value)
        self._maybe_flush()

    def delete(self, key: str) -> bool:
        self._check_open()
        existed = self.get(key) is not None
        self._log_wal("delete", key, None)
        self.memtable.delete(key)
        self._maybe_flush()
        return existed

    def scan(
        self,
        start_key: str,
        end_key: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Tuple[str, bytes]]:
        if limit is not None and limit <= 0:
            return []
        result: List[Tuple[str, bytes]] = []
        for key, value in self.items():
            if key < start_key:
                continue
            if end_key is not None and key >= end_key:
                break
            result.append((key, value))
            if limit is not None and len(result) >= limit:
                break
        return result

    def items(self) -> Iterator[Tuple[str, bytes]]:
        merged: dict = {}
        for table in sorted(self.sstables, key=lambda t: t.sequence):
            for key, value in table.items():
                merged[key] = value
        for key, value in self.memtable.items():
            merged[key] = None if value is TOMBSTONE else value
        for key in sorted(merged):
            value = merged[key]
            if value is not None:
                yield key, value

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    # -- LSM mechanics ----------------------------------------------------------

    def flush(self) -> Optional[SSTable]:
        """Freeze the current memtable into a new SSTable (no-op when empty)."""
        if self.memtable.is_empty:
            return None
        obs = self.obs
        started = obs.tracer.clock() if obs is not None else 0.0
        table = SSTable.from_memtable_items(self.memtable.items(), TOMBSTONE)
        self.sstables.append(table)
        self.memtable = MemTable()
        self.flushes += 1
        if self.directory is not None:
            table.write_to(self.directory / f"sstable-{table.sequence:08d}.sst")
            self._truncate_wal()
        if obs is not None:
            obs.counter("lsm_flushes_total").inc()
            obs.histogram("lsm_flush_seconds").observe(obs.tracer.clock() - started)
        self._maybe_compact()
        return table

    def compact(self) -> SSTable:
        """Merge every SSTable into one (a major compaction)."""
        if not self.sstables:
            raise StorageError("nothing to compact")
        obs = self.obs
        started = obs.tracer.clock() if obs is not None else 0.0
        merged = merge_tables(self.sstables, drop_tombstones=True)
        if self.directory is not None:
            for table in self.sstables:
                candidate = self.directory / f"sstable-{table.sequence:08d}.sst"
                if candidate.exists():
                    candidate.unlink()
            merged.write_to(self.directory / f"sstable-{merged.sequence:08d}.sst")
        self.sstables = [merged]
        self.compactions += 1
        if obs is not None:
            obs.counter("lsm_compactions_total").inc()
            obs.histogram("lsm_compact_seconds").observe(obs.tracer.clock() - started)
        return merged

    def _maybe_flush(self) -> None:
        if self.memtable.approximate_size_bytes >= self.config.memtable_flush_bytes:
            self.flush()

    def _maybe_compact(self) -> None:
        if len(self.sstables) > self.config.max_sstables_before_compaction:
            self.compact()

    # -- open/close lifecycle ----------------------------------------------------

    def close(self) -> None:
        """Flush, persist, and release this opener's claim on the directory.

        After ``close()`` the directory can be opened by another store (in
        this process or another one); this store rejects further mutations
        until :meth:`reopen`.  Closing an already-closed store is a no-op.
        """
        if self.closed:
            return
        if not self.memtable.is_empty:
            # Persists the memtable into an SSTable and truncates the WAL, so
            # the next opener recovers from tables alone.
            self.flush()
        self._release_lock()
        self.closed = True

    def reopen(self) -> None:
        """Re-open a closed store, re-reading the directory state from disk.

        Used by the migration protocol: the main process closes a feed's LSM
        backing while a worker lane owns the directory, then reopens it at run
        end to fold the lane's final store contents back in.
        """
        if not self.closed:
            raise StorageError("reopen() is only valid on a closed LSM store")
        if self.directory is not None:
            self._acquire_lock()
            self.memtable = MemTable()
            self.sstables = []
            self._recover()
        self.closed = False

    def _check_open(self) -> None:
        if self.closed:
            raise StorageError(
                f"LSM store {self.directory or '<memory>'} is closed; "
                "reopen() it before mutating"
            )

    def _lock_path(self) -> Optional[Path]:
        if self.directory is None or not self.exclusive:
            return None
        return self.directory / "LOCK"

    def _acquire_lock(self) -> None:
        lock = self._lock_path()
        if lock is None:
            return
        payload = str(os.getpid()).encode("ascii")
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    holder = int(lock.read_text().strip() or "0")
                except (OSError, ValueError):
                    holder = 0
                if holder and _pid_alive(holder):
                    raise StorageError(
                        f"LSM directory {self.directory} is exclusively locked "
                        f"by pid {holder}; close() the other opener first "
                        "(a feed store has exactly one opener at a time)"
                    )
                # The holder is gone — steal the stale lock and retry.
                try:
                    lock.unlink()
                except FileNotFoundError:
                    pass
                continue
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            return

    def _release_lock(self) -> None:
        lock = self._lock_path()
        if lock is None:
            return
        try:
            if int(lock.read_text().strip() or "0") == os.getpid():
                lock.unlink()
        except (OSError, ValueError):
            pass

    # -- durability --------------------------------------------------------------

    def _log_wal(self, op: str, key: str, value: Optional[bytes]) -> None:
        if self._wal_path is None or not self.config.write_ahead_log:
            return
        entry = {
            "op": op,
            "key": key,
            "value": value.hex() if value is not None else None,
        }
        with self._wal_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry) + "\n")

    def _truncate_wal(self) -> None:
        if self._wal_path is not None and self._wal_path.exists():
            self._wal_path.unlink()

    def _recover(self) -> None:
        """Reload SSTables and replay the WAL after reopening a directory."""
        assert self.directory is not None
        for path in sorted(self.directory.glob("sstable-*.sst")):
            self.sstables.append(SSTable.read_from(path))
        if self._wal_path is not None and self._wal_path.exists():
            with self._wal_path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    entry = json.loads(line)
                    if entry["op"] == "put":
                        self.memtable.put(entry["key"], bytes.fromhex(entry["value"]))
                    else:
                        self.memtable.delete(entry["key"])


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (EPERM still means alive)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - depends on host privileges
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return False
    return True
