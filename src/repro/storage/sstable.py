"""Immutable sorted string tables (SSTables) for the LSM store.

An SSTable holds a key-sorted run of records frozen from a memtable.  Lookups
binary-search the key index; optional persistence writes the table to disk in
a simple length-prefixed binary format so the store can be reopened, matching
the durability role LevelDB plays for the storage provider in the paper.
"""

from __future__ import annotations

import bisect
import itertools
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

_TOMBSTONE_MARKER = 0xFF
_VALUE_MARKER = 0x00
_sstable_ids = itertools.count()


@dataclass
class SSTable:
    """An immutable sorted run of records.

    ``entries`` holds ``(key, value_or_None)`` pairs where ``None`` encodes a
    tombstone.  ``sequence`` orders tables by age: higher sequence numbers are
    newer and shadow older tables during reads and compaction.
    """

    entries: List[Tuple[str, Optional[bytes]]]
    sequence: int = field(default_factory=lambda: next(_sstable_ids))

    def __post_init__(self) -> None:
        self._keys = [key for key, _ in self.entries]
        if self._keys != sorted(self._keys):
            raise ValueError("SSTable entries must be sorted by key")
        if len(set(self._keys)) != len(self._keys):
            raise ValueError("SSTable entries must have unique keys")

    def get(self, key: str) -> Tuple[bool, Optional[bytes]]:
        """Return ``(found, value)``; tombstones report ``(True, None)``."""
        index = bisect.bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            return True, self.entries[index][1]
        return False, None

    def items(self) -> Iterator[Tuple[str, Optional[bytes]]]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def min_key(self) -> Optional[str]:
        return self._keys[0] if self._keys else None

    @property
    def max_key(self) -> Optional[str]:
        return self._keys[-1] if self._keys else None

    @property
    def size_bytes(self) -> int:
        return sum(
            len(key.encode("utf-8")) + (len(value) if value is not None else 1)
            for key, value in self.entries
        )

    # -- persistence ---------------------------------------------------------

    def write_to(self, path: Path) -> Path:
        """Serialise the table to ``path`` in a length-prefixed binary format."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("wb") as handle:
            handle.write(struct.pack(">QI", self.sequence, len(self.entries)))
            for key, value in self.entries:
                key_bytes = key.encode("utf-8")
                if value is None:
                    handle.write(struct.pack(">BI", _TOMBSTONE_MARKER, len(key_bytes)))
                    handle.write(key_bytes)
                else:
                    handle.write(struct.pack(">BI", _VALUE_MARKER, len(key_bytes)))
                    handle.write(key_bytes)
                    handle.write(struct.pack(">I", len(value)))
                    handle.write(value)
        return path

    @classmethod
    def read_from(cls, path: Path) -> "SSTable":
        """Load a table previously produced by :meth:`write_to`."""
        path = Path(path)
        entries: List[Tuple[str, Optional[bytes]]] = []
        with path.open("rb") as handle:
            sequence, count = struct.unpack(">QI", handle.read(12))
            for _ in range(count):
                marker, key_len = struct.unpack(">BI", handle.read(5))
                key = handle.read(key_len).decode("utf-8")
                if marker == _TOMBSTONE_MARKER:
                    entries.append((key, None))
                else:
                    (value_len,) = struct.unpack(">I", handle.read(4))
                    entries.append((key, handle.read(value_len)))
        table = cls(entries=entries, sequence=sequence)
        return table

    @classmethod
    def from_memtable_items(
        cls, items: Iterator[Tuple[str, object]], tombstone: object
    ) -> "SSTable":
        """Freeze memtable items (which may contain tombstone sentinels)."""
        entries: List[Tuple[str, Optional[bytes]]] = []
        for key, value in items:
            if value is tombstone:
                entries.append((key, None))
            else:
                entries.append((key, value))  # type: ignore[arg-type]
        return cls(entries=entries)


def merge_tables(tables: List[SSTable], drop_tombstones: bool) -> SSTable:
    """Merge several tables into one, newest value per key winning.

    ``drop_tombstones`` is set when merging the full set of tables (a major
    compaction), where a tombstone no longer shadows anything and can be
    discarded.
    """
    newest: dict = {}
    for table in sorted(tables, key=lambda t: t.sequence):
        for key, value in table.items():
            newest[key] = value
    entries = [
        (key, value)
        for key, value in sorted(newest.items())
        if not (drop_tombstones and value is None)
    ]
    return SSTable(entries=entries)
