"""Abstract key-value store interface and an in-memory reference implementation.

Every component that needs off-chain storage (the SP's primary copy, the DO's
local mirror, test fixtures) programs against :class:`KVStore`, so the LSM
store and the in-memory store are interchangeable — exactly the property the
paper claims for GRuB ("any off-chain storage service supporting KV storage").
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import StorageError


class KVStore(ABC):
    """Minimal ordered key-value store interface.

    Keys are strings and values are bytes.  Iteration order is lexicographic
    by key, which the ADS layer relies on to build its key-sorted Merkle tree.
    """

    @abstractmethod
    def get(self, key: str) -> Optional[bytes]:
        """Return the value for ``key`` or ``None`` when absent."""

    @abstractmethod
    def put(self, key: str, value: bytes) -> None:
        """Insert or overwrite ``key``."""

    @abstractmethod
    def delete(self, key: str) -> bool:
        """Remove ``key``; returns whether it existed."""

    @abstractmethod
    def scan(self, start_key: str, end_key: Optional[str] = None, limit: Optional[int] = None) -> List[Tuple[str, bytes]]:
        """Return records with ``start_key <= key`` (< ``end_key`` if given), in order."""

    @abstractmethod
    def items(self) -> Iterator[Tuple[str, bytes]]:
        """Iterate all live records in key order."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of live records."""

    # -- conveniences shared by implementations -----------------------------

    def contains(self, key: str) -> bool:
        return self.get(key) is not None

    def keys(self) -> List[str]:
        return [key for key, _ in self.items()]

    def require(self, key: str) -> bytes:
        value = self.get(key)
        if value is None:
            raise StorageError(f"key not found: {key!r}")
        return value

    def put_many(self, records: Dict[str, bytes]) -> None:
        for key, value in records.items():
            self.put(key, value)

    def clear(self) -> None:
        for key in list(self.keys()):
            self.delete(key)


class InMemoryKVStore(KVStore):
    """A sorted in-memory store: a dict plus a sorted key index.

    Used where LSM behaviour (flush/compaction) is not the thing under test;
    the interface and iteration order are identical to :class:`LSMStore`.
    """

    def __init__(self) -> None:
        self._data: Dict[str, bytes] = {}
        self._sorted_keys: List[str] = []

    def get(self, key: str) -> Optional[bytes]:
        return self._data.get(key)

    def put(self, key: str, value: bytes) -> None:
        if not isinstance(value, bytes):
            raise StorageError(f"values must be bytes, got {type(value).__name__}")
        if key not in self._data:
            bisect.insort(self._sorted_keys, key)
        self._data[key] = value

    def delete(self, key: str) -> bool:
        if key not in self._data:
            return False
        del self._data[key]
        index = bisect.bisect_left(self._sorted_keys, key)
        if index < len(self._sorted_keys) and self._sorted_keys[index] == key:
            self._sorted_keys.pop(index)
        return True

    def scan(
        self,
        start_key: str,
        end_key: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Tuple[str, bytes]]:
        if limit is not None and limit <= 0:
            return []
        start = bisect.bisect_left(self._sorted_keys, start_key)
        result: List[Tuple[str, bytes]] = []
        for key in self._sorted_keys[start:]:
            if end_key is not None and key >= end_key:
                break
            result.append((key, self._data[key]))
            if limit is not None and len(result) >= limit:
                break
        return result

    def items(self) -> Iterator[Tuple[str, bytes]]:
        for key in self._sorted_keys:
            yield key, self._data[key]

    def __len__(self) -> int:
        return len(self._data)
