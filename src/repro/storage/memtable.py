"""In-memory write buffer (memtable) of the LSM store.

The memtable absorbs writes in sorted order until it reaches a size threshold,
at which point the LSM store freezes it into an immutable SSTable.  Deletions
are recorded as tombstones so that a later compaction can shadow older values
of the same key living in lower tables.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

#: Sentinel stored for deleted keys; distinguishable from any real value
#: because real values are raw bytes and the sentinel is a unique object.
TOMBSTONE = object()


@dataclass
class MemTable:
    """Sorted, mutable write buffer."""

    _data: Dict[str, object] = field(default_factory=dict)
    _sorted_keys: List[str] = field(default_factory=list)
    approximate_size_bytes: int = 0

    def put(self, key: str, value: bytes) -> None:
        self._insert(key, value, len(value))

    def delete(self, key: str) -> None:
        """Record a tombstone for ``key`` (the key may or may not exist)."""
        self._insert(key, TOMBSTONE, 1)

    def get(self, key: str) -> Tuple[bool, Optional[bytes]]:
        """Return ``(found, value)``.

        ``found`` is True when the memtable has an entry for the key, even a
        tombstone — in which case ``value`` is ``None`` and the caller must
        *not* fall through to older tables.
        """
        if key not in self._data:
            return False, None
        value = self._data[key]
        if value is TOMBSTONE:
            return True, None
        return True, value  # type: ignore[return-value]

    def items(self) -> Iterator[Tuple[str, object]]:
        """All entries (including tombstones) in key order."""
        for key in self._sorted_keys:
            yield key, self._data[key]

    def __len__(self) -> int:
        return len(self._data)

    @property
    def is_empty(self) -> bool:
        return not self._data

    def _insert(self, key: str, value: object, size: int) -> None:
        if key not in self._data:
            bisect.insort(self._sorted_keys, key)
            self.approximate_size_bytes += len(key.encode("utf-8"))
        else:
            previous = self._data[key]
            if previous is not TOMBSTONE:
                self.approximate_size_bytes -= len(previous)  # type: ignore[arg-type]
            else:
                self.approximate_size_bytes -= 1
        self._data[key] = value
        self.approximate_size_bytes += size
