"""The on-chain storage-manager contract (the paper's Listing 2).

The contract holds:

* ``rootHash`` — the latest digest of the authenticated KV store, signed and
  published by the data owner with every epoch's ``update`` transaction,
* ``replica:<key>`` slots — the on-chain replicas of records whose current
  replication decision is R.

and exposes three functions:

* ``gGet(key, consumer, callback)`` — internal call from a DU contract.  If a
  replica exists the callback is invoked synchronously with the value;
  otherwise a ``request`` event is emitted for the SP's watchdog and the call
  returns ``None`` (the callback will be invoked later by ``deliver``).
* ``deliver(items)`` — transaction from the SP answering outstanding
  requests.  Each delivered record is verified against ``rootHash`` with its
  Merkle proof; verified records optionally become replicas (when the
  record's replication decision is R) and the requesting DU's callback runs.
* ``update(entries, transitions, digest)`` — the DO's epoch transaction:
  refresh the digest, write the new values of replicated records, and
  actuate replication-state transitions (insert new replicas / evict old
  ones).

Every storage access, hash, log and internal call charges gas through the
execution context, so the experiments' gas numbers emerge from the same code
path the protocol actually takes.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.ads.merkle import MerkleProof, verify_membership
from repro.chain.contract import Contract
from repro.chain.vm import ExecutionContext
from repro.chain.gas import LAYER_APPLICATION
from repro.common.encoding import words_for_bytes
from repro.common.hashing import hash_record
from repro.common.types import ReplicationState


@dataclass(frozen=True)
class CallbackRef:
    """Reference to the DU function to invoke once data is available."""

    consumer: str
    function: str = "on_data"
    context: Tuple[Tuple[str, Any], ...] = ()

    def context_dict(self) -> Dict[str, Any]:
        return dict(self.context)

    @staticmethod
    def make(consumer: str, function: str = "on_data", **context: Any) -> "CallbackRef":
        return CallbackRef(
            consumer=consumer, function=function, context=tuple(sorted(context.items()))
        )


@dataclass(frozen=True)
class DeliverItem:
    """One record the SP delivers in answer to a request event."""

    key: str
    value: bytes
    replicate: bool
    proof: Optional[MerkleProof]
    state_prefix: str
    callback: Optional[CallbackRef]

    @property
    def calldata_bytes(self) -> int:
        proof_bytes = (self.proof.size_words if self.proof else 0) * 32
        # key word + value + proof + packed (replicate flag, callback selector).
        return 32 + len(self.value) + proof_bytes + 8


@dataclass(frozen=True)
class UpdateEntry:
    """One replicated record (or state transition) carried by an epoch update."""

    key: str
    value: Optional[bytes]
    new_state: ReplicationState
    is_transition: bool = False

    @property
    def calldata_bytes(self) -> int:
        value_bytes = len(self.value) if self.value is not None else 0
        return 32 + value_bytes + (32 if self.is_transition else 0)


@dataclass(slots=True)
class GGetCall:
    """Record of one gGet invocation, mirrored from the chain's native call log.

    The control plane's workload monitor reads these (through the DO's full
    node) to learn the on-chain read trace; this costs no gas because the
    chain logs contract invocations natively.  Slotted: one is allocated per
    on-chain read, the hottest path of every benchmark.
    """

    key: str
    hit_replica: bool
    epoch_hint: int
    consumer: str


class CallHistoryCursor:
    """A registered consumer's position in the gGet call history.

    Replaces the old pattern of unbounded history plus per-epoch
    ``calls_since(index)`` suffix copies: a consumer opens a cursor once and
    takes the new calls via :meth:`drain`.  Registered cursors tell
    :meth:`StorageManagerContract.compact_call_history` how much of the
    history prefix every consumer has seen, so long runs keep O(epoch)
    history in memory instead of O(run).  The contract only holds a *weak*
    reference to each cursor — an abandoned consumer stops pinning
    compaction once collected — and :meth:`close` deregisters eagerly.

    Positions are *absolute* call indices (they keep counting across
    compactions), so interleaving markers recorded against them stay valid.
    """

    __slots__ = ("manager", "position", "__weakref__")

    def __init__(self, manager: "StorageManagerContract") -> None:
        self.manager = manager
        self.position = manager.history_base

    def drain(self) -> List[Tuple[int, GGetCall]]:
        """Return ``(absolute_position, call)`` for every call past the cursor.

        Everything returned counts as consumed — the cursor advances to the
        history end before returning, and consumed entries become eligible
        for compaction.  The batch is materialised (not lazily yielded) so a
        later compaction can never shift entries out from under a caller
        still holding the result.
        """
        manager = self.manager
        history = manager.call_history
        base = manager.history_base
        start = self.position - base
        end = len(history)
        self.position = base + end
        return [
            (base + offset, history[offset]) for offset in range(max(0, start), end)
        ]

    def close(self) -> None:
        """Deregister the cursor so it no longer pins history compaction."""
        self.manager._drop_history_cursor(self)


#: Marker stored in a replica slot when the replica is evicted.  The paper's
#: data plane "invalidates" an existing replica on an R→NR transition rather
#: than clearing the slot, so a later re-replication of the same key pays the
#: (cheaper) storage-update price instead of a fresh insert.
INVALID_REPLICA = b"\x00"


class StorageManagerContract(Contract):
    """GRuB's on-chain component: digest keeper, replica store, read router."""

    ROOT_SLOT = "rootHash"

    def __init__(
        self,
        address: str,
        data_owner: str,
        track_trace_on_chain: str = "off",
        reuse_replica_slots: bool = False,
        gateway: Optional[str] = None,
    ) -> None:
        """``track_trace_on_chain`` selects the BL3/BL4 behaviour:

        * ``"off"`` (GRuB and the static baselines) — the read/write trace is
          only available through native call logging, which is free;
        * ``"reads"`` (BL4) — every gGet also updates an on-chain read
          counter, paying storage gas;
        * ``"reads+writes"`` (BL3) — reads and writes both update on-chain
          counters.

        ``reuse_replica_slots`` enables the BtcRelay experiment's "reusable
        storage": new replicas recycle slots freed by earlier evictions, so
        they pay the storage-update price instead of the insert price.

        ``gateway`` optionally names a hosting-gateway router contract that is
        also authorised to call ``update`` (on behalf of the data owner it
        hosts), so a multi-tenant gateway can land several feeds' epoch
        updates inside one batched transaction.
        """
        super().__init__(address)
        self.data_owner = data_owner
        self.gateway = gateway
        self.track_trace_on_chain = track_trace_on_chain
        self.reuse_replica_slots = reuse_replica_slots
        self.free_replica_slots = 0
        self.call_history: List[GGetCall] = []
        #: Absolute index of ``call_history[0]`` (> 0 once compaction ran).
        self.history_base = 0
        #: Weak references to registered cursors: a consumer that goes away
        #: without :meth:`CallHistoryCursor.close` must not pin compaction
        #: forever.
        self._history_cursors: List["weakref.ReferenceType[CallHistoryCursor]"] = []
        self.requests_emitted = 0
        self.delivered_records = 0
        self.current_epoch_hint = 0
        #: Incrementally maintained count of live (non-invalidated) replicas;
        #: ``None`` marks it dirty (a revert touched storage behind our back)
        #: and the next :meth:`replica_count` rescans.
        self._replica_count: Optional[int] = 0
        self.storage.on_rollback = self._mark_replica_count_dirty

    # -- read path ----------------------------------------------------------

    def gGet(
        self,
        ctx: ExecutionContext,
        key: str,
        consumer: str,
        callback: str = "on_data",
        callback_context: Optional[Dict[str, Any]] = None,
    ) -> Optional[bytes]:
        """Internal call from a DU contract: read ``key`` from the feed."""
        value = self.storage.load(ctx.meter, self._replica_slot(key))
        if value == INVALID_REPLICA:
            value = None
        hit = value is not None
        self.call_history.append(
            GGetCall(key=key, hit_replica=hit, epoch_hint=self.current_epoch_hint, consumer=consumer)
        )
        if self.track_trace_on_chain != "off":
            self._maybe_track_trace(ctx, key, is_write=False)
        if hit:
            # Replica-hit fast path: invoke the callback directly, without
            # materialising a CallbackRef (one is allocated per read
            # otherwise, and replica hits dominate hot workloads).
            self._run_callback(ctx, consumer, callback, callback_context, key, value)
            return value
        self.requests_emitted += 1
        self.emit(
            ctx,
            "request",
            key=key,
            consumer=consumer,
            callback=callback,
            context=callback_context or {},
        )
        return None

    def gGetRange(
        self,
        ctx: ExecutionContext,
        start_key: str,
        keys: List[str],
        consumer: str,
        callback: str = "on_data",
    ) -> Dict[str, Optional[bytes]]:
        """Range/scan read: check each key's replica, request the misses as a group."""
        results: Dict[str, Optional[bytes]] = {}
        missing: List[str] = []
        for key in keys:
            value = self.storage.load(ctx.meter, self._replica_slot(key))
            if value == INVALID_REPLICA:
                value = None
            hit = value is not None
            self.call_history.append(
                GGetCall(
                    key=key,
                    hit_replica=hit,
                    epoch_hint=self.current_epoch_hint,
                    consumer=consumer,
                )
            )
            if self.track_trace_on_chain != "off":
                self._maybe_track_trace(ctx, key, is_write=False)
            results[key] = value
            if not hit:
                missing.append(key)
        if missing:
            self.requests_emitted += 1
            self.emit(
                ctx,
                "request_range",
                start_key=start_key,
                keys=missing,
                consumer=consumer,
                callback=callback,
            )
        for key, value in results.items():
            if value is not None:
                self._run_callback(ctx, consumer, callback, None, key, value)
        return results

    def deliver(self, ctx: ExecutionContext, items: List[DeliverItem]) -> int:
        """SP transaction answering requests: verify, optionally replicate, call back."""
        root = self.storage.load(ctx.meter, self.ROOT_SLOT)
        self.require(root is not None, "no root hash published yet")
        obs = getattr(self.chain, "obs", None)
        verify_started = obs.tracer.clock() if obs is not None else 0.0
        verified = 0
        for item in items:
            self.require(item.proof is not None, f"missing proof for {item.key!r}")
            leaf = self._leaf_hash(ctx, item)
            ok = verify_membership(
                root,
                leaf,
                item.proof,
                charge_hash=lambda words: ctx.meter.charge(
                    ctx.meter.schedule.hash_cost(words), "hash"
                ),
            )
            self.require(ok, f"integrity check failed for delivered key {item.key!r}")
            if item.replicate:
                self._store_replica(ctx, item.key, item.value)
            if item.callback is not None:
                self._invoke_callback(ctx, item.callback, item.key, item.value)
            verified += 1
            self.delivered_records += 1
        if obs is not None:
            obs.counter("chain_verify_total").inc(verified)
            obs.histogram("chain_verify_seconds").observe(
                obs.tracer.clock() - verify_started
            )
        return verified

    # -- write path -----------------------------------------------------------

    def update(
        self,
        ctx: ExecutionContext,
        entries: List[UpdateEntry],
        digest: bytes,
    ) -> int:
        """The DO's epoch transaction: refresh digest, apply replicated writes/transitions."""
        self.require(
            ctx.sender == self.data_owner or (self.gateway is not None and ctx.sender == self.gateway),
            "only the data owner (or its hosting gateway) may update",
        )
        self.storage.store(ctx.meter, self.ROOT_SLOT, digest)
        applied = 0
        for entry in entries:
            self._maybe_track_trace(ctx, entry.key, is_write=True)
            if entry.new_state is ReplicationState.REPLICATED:
                self.require(
                    entry.value is not None,
                    f"replicated entry {entry.key!r} must carry its value",
                )
                self._store_replica(ctx, entry.key, entry.value)
            else:
                if entry.is_transition and self.storage.contains(ctx.meter, self._replica_slot(entry.key)):
                    # Invalidate (do not delete) so a later re-replication of
                    # the same key is a storage update rather than an insert.
                    slot = self._replica_slot(entry.key)
                    if self._replica_count is not None and self.storage.peek(slot) != INVALID_REPLICA:
                        self._replica_count -= 1
                    self.storage.store(ctx.meter, slot, INVALID_REPLICA)
                    self.free_replica_slots += 1
            applied += 1
        return applied

    def _store_replica(self, ctx: ExecutionContext, key: str, value: bytes) -> None:
        """Write a replica, recycling a freed slot when the pool allows it."""
        slot = self._replica_slot(key)
        prior = self.storage.peek(slot)
        if (
            self.reuse_replica_slots
            and self.free_replica_slots > 0
            and prior is None
        ):
            self.free_replica_slots -= 1
            self.storage.store_reusing(ctx.meter, slot, value)
        else:
            self.storage.store(ctx.meter, slot, value)
        if self._replica_count is not None and (prior is None or prior == INVALID_REPLICA):
            self._replica_count += 1

    # -- views (no global gas; used by off-chain components via their full node) --

    def replica_of(self, key: str) -> Optional[bytes]:
        """Unmetered view of a replica slot (off-chain observation)."""
        value = self.storage.peek(self._replica_slot(key))
        return None if value == INVALID_REPLICA else value

    def has_replica(self, key: str) -> bool:
        return self.replica_of(key) is not None

    def root_hash(self) -> Optional[bytes]:
        return self.storage.peek(self.ROOT_SLOT)

    def replica_count(self) -> int:
        """Number of live on-chain replicas, maintained incrementally.

        The count is updated by every replica store/invalidate, so sampling
        it per telemetry epoch is O(1) instead of an O(slots) scan; a revert
        (which rolls storage back behind the contract object) marks it dirty
        and the next call rescans.
        """
        if self._replica_count is None:
            self._replica_count = sum(
                1
                for slot, value in self.storage.slots.items()
                if slot.startswith("replica:") and value != INVALID_REPLICA
            )
        return self._replica_count

    def _mark_replica_count_dirty(self) -> None:
        self._replica_count = None

    @property
    def history_end(self) -> int:
        """Absolute index one past the latest recorded gGet call."""
        return self.history_base + len(self.call_history)

    def open_history_cursor(self) -> CallHistoryCursor:
        """Register a consumer of the call history (e.g. a workload monitor).

        Compaction only drops history every *live* registered cursor has
        consumed, so consumers must drain their cursor each epoch (and call
        :meth:`CallHistoryCursor.close` when done; merely dropping the last
        reference also works).  The caller must keep a reference to the
        returned cursor — registration is weak.
        """
        cursor = CallHistoryCursor(self)
        self._history_cursors.append(weakref.ref(cursor))
        return cursor

    def _live_history_cursors(self) -> List[CallHistoryCursor]:
        """Live registered cursors; prunes references to collected ones."""
        live: List[CallHistoryCursor] = []
        live_refs = []
        for ref in self._history_cursors:
            cursor = ref()
            if cursor is not None:
                live.append(cursor)
                live_refs.append(ref)
        if len(live_refs) != len(self._history_cursors):
            self._history_cursors = live_refs
        return live

    def _drop_history_cursor(self, cursor: CallHistoryCursor) -> None:
        self._history_cursors = [
            ref for ref in self._history_cursors
            if ref() is not None and ref() is not cursor
        ]

    def calls_since(self, index: int) -> List[GGetCall]:
        """Call-history suffix from absolute index ``index`` (a copy).

        Retained for tests and one-shot inspection; steady-state consumers
        should hold a :class:`CallHistoryCursor` instead, which iterates in
        place and enables compaction.
        """
        return self.call_history[max(0, index - self.history_base):]

    def compact_call_history(self) -> int:
        """Drop the history prefix every registered cursor has consumed.

        Returns the number of entries dropped.  Without this, ``gGet``
        bookkeeping grows O(run); with per-epoch compaction a long fleet run
        keeps only the current epoch's tail in memory.  No-op when no cursor
        is registered (nothing is known to have been consumed).
        """
        cursors = self._live_history_cursors()
        if not cursors:
            return 0
        consumed = min(cursor.position for cursor in cursors)
        drop = consumed - self.history_base
        if drop <= 0:
            return 0
        del self.call_history[:drop]
        self.history_base = consumed
        return drop

    # -- internals ---------------------------------------------------------------

    def _replica_slot(self, key: str) -> str:
        return f"replica:{key}"

    def _leaf_hash(self, ctx: ExecutionContext, item: DeliverItem) -> bytes:
        words = max(1, words_for_bytes(len(item.value))) + 2
        ctx.meter.charge(ctx.meter.schedule.hash_cost(words), "hash")
        return hash_record(item.key, item.value, item.state_prefix)

    def _invoke_callback(
        self, ctx: ExecutionContext, callback: CallbackRef, key: str, value: bytes
    ) -> None:
        self._run_callback(
            ctx, callback.consumer, callback.function, callback.context_dict(), key, value
        )

    def _run_callback(
        self,
        ctx: ExecutionContext,
        consumer: str,
        function: str,
        context: Optional[Dict[str, Any]],
        key: str,
        value: bytes,
    ) -> None:
        chain = self.chain
        if chain is None:
            return
        contract = chain.contracts.get(consumer)
        if contract is None:
            return
        self.call_contract(
            ctx,
            contract,
            function,
            layer=LAYER_APPLICATION,
            key=key,
            value=value,
            **(context or {}),
        )

    def _maybe_track_trace(self, ctx: ExecutionContext, key: str, is_write: bool) -> None:
        """BL3/BL4 behaviour: pay storage gas to keep the trace on chain."""
        if self.track_trace_on_chain == "off":
            return
        if is_write and self.track_trace_on_chain != "reads+writes":
            return
        suffix = "w" if is_write else "r"
        slot = f"trace:{suffix}:{key}"
        current = self.storage.peek(slot)
        count = int.from_bytes(current, "big") if current else 0
        self.storage.store(ctx.meter, slot, (count + 1).to_bytes(32, "big"))
