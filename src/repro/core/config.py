"""Configuration of a GRuB (or baseline) deployment.

The config gathers every knob the paper's evaluation varies: the decision
algorithm and its parameters (K, K', D, adaptive policies), the epoch size,
record sizing, delivery batching and the chain parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.chain.chain import ChainParameters
from repro.chain.gas import GasSchedule
from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class GrubConfig:
    """Configuration for a GRuB system instance.

    Attributes:
        epoch_size: number of workload operations per epoch; the DO batches
            the epoch's writes into a single ``update`` transaction ("each
            epoch of 32 txs" in the paper's figures).
        algorithm: which decision algorithm the control plane runs; one of
            ``"memoryless"``, ``"memorizing"``, ``"adaptive-k1"``,
            ``"adaptive-k2"``, ``"offline"``, ``"always"``, ``"never"``.
        k: the memoryless threshold K (consecutive reads before replicating).
            ``None`` derives it from the gas schedule via Equation 1.
        k_prime: the memorizing algorithm's K'; ``None`` derives it like K.
        window_d: the memorizing algorithm's hysteresis window D.
        adaptive_history: number of past writes the adaptive-K heuristics
            average over (the paper uses 3).
        batch_deliver: whether the SP batches all pending deliver responses of
            an epoch into one transaction (the paper's epoch-batched
            accounting) or sends one transaction per request.
        continuous_decisions: run the decision algorithm on every operation as
            soon as the DO observes it (writes locally, reads via the chain's
            call history) instead of once per epoch; decisions can then be
            actuated by the very next deliver.
        deliver_replication_hint: let the SP's deliver carry the DO's current
            replication decision so an NR→R transition is materialised on the
            read path (the ``replicate`` flag of the paper's Listing 2)
            instead of waiting for the next epoch update.
        evict_unused_after_epochs: evict a replicated record that has not been
            read for this many epochs (the BtcRelay experiment's "reusable
            storage"); ``None`` disables time-based eviction.
        record_size_bytes: default record payload size used when a workload
            operation does not carry an explicit value.
        track_application_gas: attribute DU callback gas to the application
            layer (Table 3's second column).
        gas_schedule / chain_parameters: substrate configuration.
    """

    epoch_size: int = 32
    algorithm: str = "memoryless"
    k: Optional[int] = None
    k_prime: Optional[int] = None
    window_d: int = 1
    adaptive_history: int = 3
    batch_deliver: bool = True
    continuous_decisions: bool = False
    deliver_replication_hint: bool = True
    reuse_replica_slots: bool = False
    evict_unused_after_epochs: Optional[int] = None
    record_size_bytes: int = 32
    track_application_gas: bool = True
    gas_schedule: GasSchedule = field(default_factory=GasSchedule)
    chain_parameters: ChainParameters = field(default_factory=ChainParameters)

    VALID_ALGORITHMS = (
        "memoryless",
        "memorizing",
        "adaptive-k1",
        "adaptive-k2",
        "offline",
        "always",
        "never",
    )

    def __post_init__(self) -> None:
        if self.epoch_size <= 0:
            raise ConfigurationError("epoch_size must be positive")
        if self.algorithm not in self.VALID_ALGORITHMS:
            raise ConfigurationError(
                f"unknown algorithm {self.algorithm!r}; expected one of {self.VALID_ALGORITHMS}"
            )
        if self.k is not None and self.k <= 0:
            raise ConfigurationError("k must be positive when given")
        if self.k_prime is not None and self.k_prime <= 0:
            raise ConfigurationError("k_prime must be positive when given")
        if self.window_d < 0:
            raise ConfigurationError("window_d must be non-negative")
        if self.record_size_bytes <= 0:
            raise ConfigurationError("record_size_bytes must be positive")

    @property
    def effective_k(self) -> int:
        """K from Equation 1 when not set explicitly: ``C_update / C_read_off``."""
        if self.k is not None:
            return self.k
        return self.gas_schedule.replication_threshold_k

    @property
    def effective_k_prime(self) -> int:
        if self.k_prime is not None:
            return self.k_prime
        return self.gas_schedule.replication_threshold_k

    def with_algorithm(self, algorithm: str, **overrides) -> "GrubConfig":
        """Copy of the config running a different algorithm (and overrides)."""
        return replace(self, algorithm=algorithm, **overrides)

    def with_overrides(self, **overrides) -> "GrubConfig":
        return replace(self, **overrides)
