"""Data-consumer (DU) contracts.

A DU is an application smart contract that reads the data feed.  The base
class wires the two halves of the paper's read path: ``query_feed`` issues the
``gGet`` internal call to the storage manager, and ``on_data`` is the callback
the storage manager (or a later ``deliver`` transaction) invokes with the
verified record.  Applications subclass it and put their query-processing
logic in ``on_data`` (the stablecoin issuer and the pegged-token contract in
:mod:`repro.apps` do exactly that).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.chain.contract import Contract
from repro.chain.vm import ExecutionContext


class DataConsumerContract(Contract):
    """Base DU contract: queries the feed and receives callbacks."""

    def __init__(self, address: str, storage_manager: str) -> None:
        super().__init__(address)
        self.storage_manager_address = storage_manager
        self.received: List[Dict[str, Any]] = []
        self.pending_queries = 0

    # -- public API ----------------------------------------------------------

    def query_feed(
        self,
        ctx: ExecutionContext,
        key: str,
        callback: str = "on_data",
        callback_context: Optional[Dict[str, Any]] = None,
    ) -> Optional[bytes]:
        """Read ``key`` from the feed via the storage manager's gGet."""
        manager = self.chain.get_contract(self.storage_manager_address)
        self.pending_queries += 1
        return self.call_contract(
            ctx,
            manager,
            "gGet",
            key=key,
            consumer=self.address,
            callback=callback,
            callback_context=callback_context,
        )

    def scan_feed(
        self,
        ctx: ExecutionContext,
        start_key: str,
        keys: List[str],
        callback: str = "on_data",
    ) -> Dict[str, Optional[bytes]]:
        """Range read used by scan workloads (YCSB E)."""
        manager = self.chain.get_contract(self.storage_manager_address)
        self.pending_queries += 1
        return self.call_contract(
            ctx,
            manager,
            "gGetRange",
            start_key=start_key,
            keys=keys,
            consumer=self.address,
            callback=callback,
        )

    # -- callback ---------------------------------------------------------------

    def on_data(self, ctx: ExecutionContext, key: str, value: bytes, **context: Any) -> None:
        """Default query processor: record the delivery and charge a token amount
        of application gas (one memory word), standing in for app logic.

        Application subclasses override this with real logic (and real gas).
        """
        ctx.meter.charge(ctx.meter.schedule.memory_cost(1), "callback")
        self.received.append({"key": key, "value": value, **context})
        if self.pending_queries > 0:
            self.pending_queries -= 1

    # -- inspection ---------------------------------------------------------------

    def last_value(self, key: str) -> Optional[bytes]:
        """Most recent value received for ``key`` (off-chain inspection)."""
        for entry in reversed(self.received):
            if entry["key"] == key:
                return entry["value"]
        return None

    def deliveries(self) -> int:
        return len(self.received)
