"""The data owner (DO): the trusted off-chain producer of the feed.

The DO implements the write path of the data plane (Section 3.3 / Appendix
B.2.1 of the paper):

* it buffers the data updates produced during the current epoch (``gPuts`` is
  an epoch-batched remote call),
* at the end of the epoch it runs the control plane to obtain replication
  decisions and state transitions (step w0),
* for every update it runs the ADS protocol with the SP — fetch the update
  witness, verify it, apply the update, recompute the root (step w1),
* it signs the new root and sends a single ``update`` transaction to the
  storage-manager contract, carrying the digest, the new values of replicated
  records, and any replication-state transitions (step w2).

The DO is trusted, so its own computation costs no gas; only the ``update``
transaction it submits does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ads.authenticated_kv import AuthenticatedKVStore
from repro.ads.signer import RootSigner, SignedRoot
from repro.chain.chain import Blockchain
from repro.chain.gas import LAYER_FEED
from repro.chain.transaction import Transaction
from repro.common.types import KVRecord, Operation, ReplicationState
from repro.core.control_plane import ControlPlane
from repro.core.storage_manager import StorageManagerContract, UpdateEntry


@dataclass
class EpochUpdateResult:
    """What the DO submitted (or skipped) at the end of an epoch."""

    transaction: Optional[Transaction]
    entries: List[UpdateEntry]
    transitions: Dict[str, ReplicationState]
    signed_root: Optional[SignedRoot]
    buffered_writes: int


@dataclass
class PreparedEpochUpdate:
    """An epoch update that has been computed but not yet submitted on chain.

    Produced by :meth:`DataOwner.prepare_epoch_update` (control-plane run, ADS
    updates, root signing — steps w0/w1).  A single-feed deployment submits it
    straight away via :meth:`DataOwner.submit_prepared`; the multi-tenant
    gateway instead collects the prepared updates of every feed in a shard and
    lands them in one batched router transaction, amortising the transaction
    base cost across tenants.
    """

    entries: List[UpdateEntry]
    transitions: Dict[str, ReplicationState]
    signed_root: Optional[SignedRoot]
    buffered_writes: int

    @property
    def has_payload(self) -> bool:
        """Whether anything changed this epoch (an empty epoch sends no tx)."""
        return self.buffered_writes > 0 or bool(self.entries)

    @property
    def calldata_bytes(self) -> int:
        """Digest (2 words) plus the entries' encoded size."""
        if not self.has_payload:
            return 0
        return 64 + sum(entry.calldata_bytes for entry in self.entries)


@dataclass
class DataOwner:
    """Trusted producer: buffers writes, runs the control plane, updates the chain."""

    address: str
    chain: Blockchain
    storage_manager: StorageManagerContract
    sp_store: AuthenticatedKVStore
    control_plane: ControlPlane
    signer: RootSigner = field(default_factory=RootSigner)
    verify_witnesses: bool = False
    trusted_root: bytes = b""
    #: Gas-attribution scope stamped on the DO's transactions (the feed id
    #: when the DO is hosted by the multi-tenant gateway).
    scope: Optional[str] = None
    _write_buffer: List[Operation] = field(default_factory=list)
    epochs_submitted: int = 0

    # -- gPuts: the producer-facing API --------------------------------------------

    def gPuts(self, updates: List[Tuple[str, bytes]]) -> None:
        """Buffer a batch of key/value updates produced during this epoch."""
        for key, value in updates:
            operation = Operation.write(key, value)
            self._write_buffer.append(operation)
            self.control_plane.record_local_write(operation)

    def put(self, key: str, value: bytes) -> None:
        """Buffer a single update (convenience wrapper over :meth:`gPuts`)."""
        self.gPuts([(key, value)])

    # -- preloading -----------------------------------------------------------------

    def preload(self, records: List[KVRecord]) -> SignedRoot:
        """Initialise the SP store with ``records`` and publish the first digest.

        Preloading happens before the measured workload starts (the paper
        preloads 2^16 records for the YCSB experiments), so it uses a single
        bootstrap transaction whose gas is not attributed to any epoch.
        """
        root = self.sp_store.load(records)
        self.trusted_root = root
        signed = self.signer.sign(root)
        entries = [
            UpdateEntry(key=record.key, value=record.value, new_state=record.state, is_transition=False)
            for record in records
            if record.state is ReplicationState.REPLICATED
        ]
        calldata = 64 + sum(entry.calldata_bytes for entry in entries)
        transaction = Transaction(
            sender=self.address,
            contract=self.storage_manager.address,
            function="update",
            args={"entries": entries, "digest": signed.root},
            calldata_bytes=calldata,
            layer=LAYER_FEED,
            scope=self.scope,
        )
        self.chain.submit(transaction)
        self.chain.mine_block()
        return signed

    # -- epoch update (write path w0-w2) -----------------------------------------------

    def end_epoch(self) -> EpochUpdateResult:
        """Run the control plane and submit this epoch's ``update`` transaction."""
        prepared = self.prepare_epoch_update()
        return self.submit_prepared(prepared)

    def prepare_epoch_update(self) -> PreparedEpochUpdate:
        """Steps w0/w1: run the control plane, apply ADS updates, sign the root.

        Mutates the SP store and the DO's trusted root but submits nothing on
        chain; the caller decides how the prepared update reaches the contract
        (a standalone ``update`` transaction, or a gateway ``update_batch``
        grouped with other feeds).
        """
        transitions = self.control_plane.run_epoch(self.sp_store.replicated_keys())

        entries: List[UpdateEntry] = []
        written_keys: Dict[str, ReplicationState] = {}
        replicated_this_epoch: set = set()

        # Steps w1/w2 for the epoch's buffered writes: every update runs the
        # ADS protocol with the SP; updates whose record is (or becomes)
        # replicated are additionally carried by the ``update`` transaction so
        # the on-chain replica tracks every tick of the feed.  When witnesses
        # are not verified per update (the default — the DO trusts its own
        # mirror), the whole epoch's writes land in one batched tree pass.
        batched: Optional[List[Tuple[str, bytes, ReplicationState]]] = (
            None if self.verify_witnesses else []
        )
        for operation in self._write_buffer:
            if self.verify_witnesses:
                witness = self.sp_store.update_witness(operation.key)
                self.sp_store.verify_witness(witness, self.trusted_root)
            decided = transitions.get(
                operation.key, self.control_plane.decision_for(operation.key)
            )
            if batched is None:
                self.sp_store.apply_update(operation.key, operation.value or b"", decided)
            else:
                batched.append((operation.key, operation.value or b"", decided))
            written_keys[operation.key] = decided
            if decided is ReplicationState.REPLICATED:
                already_on_chain = (
                    self.storage_manager.has_replica(operation.key)
                    or operation.key in replicated_this_epoch
                )
                entries.append(
                    UpdateEntry(
                        key=operation.key,
                        value=operation.value or b"",
                        new_state=ReplicationState.REPLICATED,
                        is_transition=not already_on_chain,
                    )
                )
                replicated_this_epoch.add(operation.key)

        if batched:
            self.sp_store.apply_updates(batched)

        # Materialise state transitions for keys that were not written this epoch.
        for key, new_state in transitions.items():
            if key in written_keys:
                # The write loop above already placed the record correctly;
                # still evict a stale replica when the final decision is NR.
                if (
                    new_state is ReplicationState.NOT_REPLICATED
                    and self.storage_manager.has_replica(key)
                    and key not in replicated_this_epoch
                ):
                    entries.append(
                        UpdateEntry(key=key, value=None, new_state=new_state, is_transition=True)
                    )
                continue
            record = self.sp_store.get_record(key)
            if record is None:
                continue
            if record.state is not new_state:
                self.sp_store.apply_state_transition(key, new_state)
            currently_on_chain = self.storage_manager.has_replica(key)
            if new_state is ReplicationState.REPLICATED and not currently_on_chain:
                entries.append(
                    UpdateEntry(
                        key=key,
                        value=record.value,
                        new_state=ReplicationState.REPLICATED,
                        is_transition=True,
                    )
                )
                replicated_this_epoch.add(key)
            elif new_state is ReplicationState.NOT_REPLICATED and currently_on_chain:
                entries.append(
                    UpdateEntry(key=key, value=None, new_state=new_state, is_transition=True)
                )

        buffered = len(self._write_buffer)
        self._write_buffer = []

        if buffered == 0 and not entries:
            # Nothing changed this epoch: no digest refresh is needed and no
            # transaction is sent (saves the base transaction cost).
            return PreparedEpochUpdate(
                entries=[],
                transitions=transitions,
                signed_root=None,
                buffered_writes=0,
            )

        new_root = self.sp_store.root
        self.trusted_root = new_root
        signed = self.signer.sign(new_root)
        return PreparedEpochUpdate(
            entries=entries,
            transitions=transitions,
            signed_root=signed,
            buffered_writes=buffered,
        )

    def note_epoch_submitted(self) -> None:
        """Count one epoch update landed on chain (standalone or batched)."""
        self.epochs_submitted += 1

    def submit_prepared(self, prepared: PreparedEpochUpdate) -> EpochUpdateResult:
        """Step w2: submit a prepared update as a standalone transaction."""
        if not prepared.has_payload:
            return EpochUpdateResult(
                transaction=None,
                entries=[],
                transitions=prepared.transitions,
                signed_root=None,
                buffered_writes=0,
            )
        assert prepared.signed_root is not None
        transaction = Transaction(
            sender=self.address,
            contract=self.storage_manager.address,
            function="update",
            args={"entries": prepared.entries, "digest": prepared.signed_root.root},
            calldata_bytes=prepared.calldata_bytes,
            layer=LAYER_FEED,
            scope=self.scope,
        )
        self.chain.submit(transaction)
        self.note_epoch_submitted()
        return EpochUpdateResult(
            transaction=transaction,
            entries=prepared.entries,
            transitions=prepared.transitions,
            signed_root=prepared.signed_root,
            buffered_writes=prepared.buffered_writes,
        )

    @property
    def pending_writes(self) -> int:
        return len(self._write_buffer)
