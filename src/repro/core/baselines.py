"""The static and dynamic baselines the paper compares GRuB against.

* **BL1** (:class:`NoReplicationSystem`) — data only on the off-chain SP;
  every read pays the request/deliver path.
* **BL2** (:class:`AlwaysReplicateSystem`) — every record also on chain;
  every write pays calldata plus the contract storage update.
* **BL3** (:class:`OnChainTraceSystem`) — dynamic replication whose
  decision-making state (the read *and* write trace) is kept in contract
  storage, paying storage gas per operation; the paper's Figure 7 uses it to
  motivate running the decision components off chain.
* **BL4** (:class:`OnChainReadTraceSystem`) — the lighter on-chain-trace
  variant that only keeps read counters on chain.

All four reuse the exact GRuB plumbing (storage manager, SP, DO, epoch loop);
only the decision algorithm and — for BL3/BL4 — the storage manager's
on-chain trace tracking differ, so gas differences are attributable purely to
the replication policy, as in the paper's methodology.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.common.types import KVRecord
from repro.core.config import GrubConfig
from repro.core.grub import GrubSystem


class NoReplicationSystem(GrubSystem):
    """BL1: never replicate; all reads are served off chain with proofs."""

    name = "BL1 (no replica)"

    def __init__(
        self,
        config: Optional[GrubConfig] = None,
        consumer_factory=None,
        preload: Optional[Sequence[KVRecord]] = None,
    ) -> None:
        config = (config or GrubConfig()).with_algorithm("never")
        super().__init__(config, consumer_factory=consumer_factory, preload=preload)


class AlwaysReplicateSystem(GrubSystem):
    """BL2: always replicate; every record lives in contract storage."""

    name = "BL2 (always replicate)"

    def __init__(
        self,
        config: Optional[GrubConfig] = None,
        consumer_factory=None,
        preload: Optional[Sequence[KVRecord]] = None,
    ) -> None:
        config = (config or GrubConfig()).with_algorithm("always")
        super().__init__(config, consumer_factory=consumer_factory, preload=preload)


class OnChainTraceSystem(GrubSystem):
    """BL3: GRuB-style decisions, but the full trace is stored on chain."""

    name = "BL3 (dynamic, on-chain trace)"

    def _trace_mode(self) -> str:
        return "reads+writes"


class OnChainReadTraceSystem(GrubSystem):
    """BL4: GRuB-style decisions with only the read trace stored on chain."""

    name = "BL4 (dynamic, on-chain read trace)"

    def _trace_mode(self) -> str:
        return "reads"


def build_system(name: str, config: Optional[GrubConfig] = None, **kwargs) -> GrubSystem:
    """Factory mapping the paper's baseline names to system classes.

    Accepted names: ``"grub"``, ``"bl1"``, ``"bl2"``, ``"bl3"``, ``"bl4"``.
    """
    normalized = name.strip().lower()
    if normalized in ("grub", "g"):
        return GrubSystem(config, **kwargs)
    if normalized in ("bl1", "no-replica", "never"):
        return NoReplicationSystem(config, **kwargs)
    if normalized in ("bl2", "always", "always-replicate"):
        return AlwaysReplicateSystem(config, **kwargs)
    if normalized in ("bl3", "on-chain-trace"):
        return OnChainTraceSystem(config, **kwargs)
    if normalized in ("bl4", "on-chain-read-trace"):
        return OnChainReadTraceSystem(config, **kwargs)
    raise ValueError(f"unknown system name {name!r}")
