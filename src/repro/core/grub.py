"""The GRuB system facade: wire the substrates together and drive workloads.

:class:`GrubSystem` assembles a blockchain, a storage-manager contract, a DU
contract, the off-chain SP with its authenticated store, and the DO with its
control plane, and exposes a single :meth:`GrubSystem.run` that drives a
workload (a sequence of :class:`~repro.common.types.Operation`) through the
whole stack epoch by epoch, returning a :class:`RunReport` with the gas series
the paper's figures plot.

The epoch loop models the paper's deployment:

1. Within an epoch, writes are buffered locally by the DO (no gas yet), while
   reads execute on chain immediately (they are internal calls of DU
   transactions that exist regardless of the feed): a read either hits an
   on-chain replica or emits a ``request`` event.
2. At the end of the epoch, the SP's watchdog answers all outstanding
   requests with a ``deliver`` transaction (batched by default), the DO runs
   the control plane and submits the epoch's ``update`` transaction, and a
   block is mined.

Gas is attributed to the feed layer or the application layer; the per-epoch
gas of the feed layer divided by the number of operations in the epoch is the
"Gas per operation" metric of the paper's time-series figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.ads.authenticated_kv import AuthenticatedKVStore
from repro.chain.chain import Blockchain
from repro.chain.gas import LAYER_APPLICATION, LAYER_FEED
from repro.common.clock import SimulatedClock
from repro.common.errors import ConfigurationError
from repro.common.types import (
    EpochSummary,
    KVRecord,
    Operation,
    OperationKind,
    ReplicationState,
)
from repro.core.config import GrubConfig
from repro.core.consistency import ConsistencyModel
from repro.core.control_plane import ControlPlane, DecisionActuator, WorkloadMonitor
from repro.core.data_consumer import DataConsumerContract
from repro.core.data_owner import DataOwner
from repro.core.decision.base import CostModel, make_algorithm
from repro.core.service_provider import ServiceProvider
from repro.core.storage_manager import StorageManagerContract


@dataclass
class RunReport:
    """Results of driving one workload through a system."""

    system_name: str
    operations: int = 0
    reads: int = 0
    writes: int = 0
    epochs: List[EpochSummary] = field(default_factory=list)
    gas_feed: int = 0
    gas_application: int = 0
    replications: int = 0
    evictions: int = 0
    deliveries: int = 0
    update_transactions: int = 0
    gas_by_category: Dict[str, int] = field(default_factory=dict)

    @property
    def gas_total(self) -> int:
        return self.gas_feed + self.gas_application

    @property
    def gas_per_operation(self) -> float:
        if self.operations == 0:
            return 0.0
        return self.gas_feed / self.operations

    @property
    def gas_per_operation_total(self) -> float:
        if self.operations == 0:
            return 0.0
        return self.gas_total / self.operations

    def epoch_series(self) -> List[float]:
        """Per-epoch feed gas per operation (the Y series of the paper's figures)."""
        return [epoch.gas_per_operation for epoch in self.epochs]

    def saving_versus(self, other: "RunReport") -> float:
        """Fractional gas saving of this run compared to ``other`` (positive = cheaper)."""
        if other.gas_feed == 0:
            return 0.0
        return 1.0 - self.gas_feed / other.gas_feed


class GrubSystem:
    """A fully wired GRuB deployment driven by workload operations.

    By default the system owns its blockchain (the paper's single-feed
    deployment).  The multi-tenant gateway instead passes a shared ``chain``
    plus a ``feed_id``: every component address is then namespaced under the
    feed id, all gas the feed causes is billed to the feed's scope, and
    ``gateway`` authorises the gateway's router contract to land this feed's
    epoch updates inside batched cross-feed transactions.
    """

    name = "GRuB"

    def __init__(
        self,
        config: Optional[GrubConfig] = None,
        consumer_factory=None,
        preload: Optional[Sequence[KVRecord]] = None,
        *,
        chain: Optional[Blockchain] = None,
        feed_id: Optional[str] = None,
        gateway: Optional[str] = None,
        sp_store_backing=None,
    ) -> None:
        self.config = config or GrubConfig()
        self.feed_id = feed_id
        prefix = f"{feed_id}/" if feed_id else ""
        if chain is None:
            self.clock = SimulatedClock()
            self.chain = Blockchain(
                schedule=self.config.gas_schedule,
                parameters=self.config.chain_parameters,
                clock=self.clock,
            )
        else:
            # Shared-chain (gateway) mode: the chain's pricing is fixed by the
            # host.  The control plane's cost model is built from the feed's
            # config, so a mismatched schedule would make the feed optimise
            # against prices the chain never charges — reject it loudly.
            if self.config.gas_schedule != chain.schedule:
                raise ConfigurationError(
                    f"feed {feed_id!r}: config.gas_schedule differs from the "
                    "shared chain's schedule; hosted feeds must price "
                    "decisions with the host chain's gas schedule"
                )
            if self.config.chain_parameters != chain.parameters:
                raise ConfigurationError(
                    f"feed {feed_id!r}: config.chain_parameters differ from "
                    "the shared chain's parameters"
                )
            self.chain = chain
            self.clock = chain.clock
        self.storage_manager = StorageManagerContract(
            address=f"{prefix}storage-manager",
            data_owner=f"{prefix}data-owner",
            track_trace_on_chain=self._trace_mode(),
            reuse_replica_slots=self.config.reuse_replica_slots,
            gateway=gateway,
        )
        self.chain.deploy(self.storage_manager)
        if consumer_factory is None:
            self.consumer = DataConsumerContract(
                f"{prefix}data-consumer", self.storage_manager.address
            )
        else:
            self.consumer = consumer_factory(self.storage_manager.address)
        self.chain.deploy(self.consumer)
        # The SP's primary store mirrors whatever KV backend the deployment
        # selects (the paper's "any off-chain storage service supporting KV
        # storage"): in-memory by default, or e.g. an LSM tree selected by the
        # gateway's ``FeedSpec(store_backend="lsm", store_directory=...)``.
        if sp_store_backing is not None:
            self.sp_store = AuthenticatedKVStore(backing=sp_store_backing)
        else:
            self.sp_store = AuthenticatedKVStore()
        self.service_provider = ServiceProvider(
            address=f"{prefix}storage-provider",
            chain=self.chain,
            storage_manager=self.storage_manager,
            store=self.sp_store,
            batch_deliver=self.config.batch_deliver,
            scope=feed_id,
        )
        cost_model = CostModel.from_schedule(self.config.gas_schedule)
        self._cost_model = cost_model
        algorithm = make_algorithm(
            self.config.algorithm,
            cost_model,
            k=self.config.k,
            k_prime=self.config.k_prime,
            window_d=self.config.window_d,
            adaptive_history=self.config.adaptive_history,
        )
        control_plane = ControlPlane(
            monitor=WorkloadMonitor(storage_manager=self.storage_manager),
            algorithm=algorithm,
            actuator=DecisionActuator(),
            evict_unused_after_epochs=self.config.evict_unused_after_epochs,
            continuous=self.config.continuous_decisions,
        )
        self.data_owner = DataOwner(
            address=f"{prefix}data-owner",
            chain=self.chain,
            storage_manager=self.storage_manager,
            sp_store=self.sp_store,
            control_plane=control_plane,
            scope=feed_id,
        )
        if self.config.deliver_replication_hint and self.config.algorithm not in ("always", "never"):
            self.service_provider.decision_lookup = control_plane.decision_for
        self.consistency = ConsistencyModel(
            epoch_seconds=self.config.epoch_size * 1.0,
            chain=self.config.chain_parameters,
        )
        if preload:
            self.data_owner.preload(list(preload))

    # -- construction helpers ----------------------------------------------------

    def _trace_mode(self) -> str:
        return "off"

    def set_future_trace(self, operations: Sequence[Operation]) -> None:
        """Give a clairvoyant (offline-optimal) algorithm the full future trace."""
        algorithm = make_algorithm(
            "offline",
            self._cost_model,
            future_trace=list(operations),
        )
        self.data_owner.control_plane.algorithm = algorithm

    # -- workload driving -----------------------------------------------------------

    def run(
        self,
        operations: Iterable[Operation],
        *,
        phase_markers: Optional[Dict[int, str]] = None,
    ) -> RunReport:
        """Drive ``operations`` through the system, one epoch at a time."""
        report = RunReport(system_name=self.name)
        epoch_ops: List[Operation] = []
        for operation in operations:
            epoch_ops.append(operation)
            if len(epoch_ops) >= self.config.epoch_size:
                self._run_epoch(epoch_ops, report, phase_markers)
                epoch_ops = []
        if epoch_ops:
            self._run_epoch(epoch_ops, report, phase_markers)
        self._finalise_report(report)
        return report

    # -- epoch-step hooks ------------------------------------------------------
    #
    # The epoch loop is decomposed into three steps so an external scheduler
    # (the multi-tenant gateway's EpochScheduler) can drive many feeds in
    # lockstep: begin every feed's epoch, interleave their operations, then
    # settle delivers/updates across feeds in batched transactions instead of
    # the standalone per-feed settlement below.

    def begin_epoch(self, index: int, operations: int = 0) -> EpochSummary:
        """Start epoch ``index`` and return its (empty) summary."""
        self.storage_manager.current_epoch_hint = index
        return EpochSummary(index=index, operations=operations)

    def drive_operation(
        self, operation: Operation, summary: EpochSummary, report: RunReport
    ) -> None:
        """Apply one workload operation: buffer a write, or execute a read on chain."""
        if operation.is_write:
            value = operation.value
            if value is None:
                value = b"\x00" * self.config.record_size_bytes
            self.data_owner.put(operation.key, value)
            summary.writes += 1
            report.writes += 1
        elif operation.kind is OperationKind.SCAN:
            keys = self._scan_keys(operation)
            self.chain.execute_internal_call(
                sender="end-user",
                contract_address=self.consumer.address,
                function="scan_feed",
                layer=LAYER_FEED,
                scope=self.feed_id,
                start_key=operation.key,
                keys=keys,
            )
            summary.reads += 1
            report.reads += 1
        else:
            self.chain.execute_internal_call(
                sender="end-user",
                contract_address=self.consumer.address,
                function="query_feed",
                layer=LAYER_FEED,
                scope=self.feed_id,
                key=operation.key,
            )
            summary.reads += 1
            report.reads += 1
        report.operations += 1
        if self.config.continuous_decisions and operation.is_read:
            # The DO's full node sees the gGet in the next block; feed it
            # to the decision algorithm straight away.
            self.data_owner.control_plane.observe_chain_reads()
        if not self.config.batch_deliver:
            # Immediate delivery: the watchdog answers each request as it
            # appears rather than waiting for the end of the epoch.
            self.service_provider.service_epoch()
            self.chain.mine_block()

    def record_epoch(
        self,
        summary: EpochSummary,
        report: RunReport,
        *,
        deliveries: int,
        update_transactions: int,
        transitions: Dict[str, ReplicationState],
        gas_feed: int,
        gas_application: int,
    ) -> None:
        """Fold one settled epoch's outcome into the summary and the report."""
        summary.deliveries = deliveries
        summary.update_transactions = update_transactions
        summary.replications = sum(
            1 for state in transitions.values() if state is ReplicationState.REPLICATED
        )
        summary.evictions = sum(
            1 for state in transitions.values() if state is ReplicationState.NOT_REPLICATED
        )
        summary.gas_feed = gas_feed
        summary.gas_application = gas_application
        report.epochs.append(summary)
        report.gas_feed += summary.gas_feed
        report.gas_application += summary.gas_application
        report.replications += summary.replications
        report.evictions += summary.evictions
        report.deliveries += summary.deliveries
        report.update_transactions += summary.update_transactions
        # The control plane's monitor has consumed this epoch's read trace by
        # now; drop the consumed prefix so long runs keep O(epoch) history in
        # memory instead of O(run).
        self.storage_manager.compact_call_history()

    def _run_epoch(
        self,
        operations: List[Operation],
        report: RunReport,
        phase_markers: Optional[Dict[int, str]],
    ) -> None:
        feed_before = self.chain.ledger.feed_total
        app_before = self.chain.ledger.application_total
        summary = self.begin_epoch(len(report.epochs), len(operations))
        if phase_markers and report.operations in phase_markers:
            summary.extras["phase"] = phase_markers[report.operations]

        for operation in operations:
            self.drive_operation(operation, summary, report)

        # End of epoch: the SP answers outstanding requests first (its deliver
        # may already materialise pending NR→R decisions via the replicate
        # hint), then the DO's update transaction lands in the next block.
        deliver_txs = self.service_provider.service_epoch()
        if deliver_txs:
            self.chain.mine_block()
        update_result = self.data_owner.end_epoch()
        self.chain.mine_block()

        self.record_epoch(
            summary,
            report,
            deliveries=len(deliver_txs),
            update_transactions=1 if update_result.transaction is not None else 0,
            transitions=update_result.transitions,
            gas_feed=self.chain.ledger.feed_total - feed_before,
            gas_application=self.chain.ledger.application_total - app_before,
        )

    def _scan_keys(self, operation: Operation) -> List[str]:
        selected = self.sp_store.select_keys(operation.key, operation.scan_length)
        return selected or [operation.key]

    def _finalise_report(self, report: RunReport) -> None:
        report.gas_by_category = dict(self.chain.ledger.by_category)

    # -- convenience views ---------------------------------------------------------

    @property
    def replicated_on_chain(self) -> int:
        return self.storage_manager.replica_count()

    def preload_records(self, records: Sequence[KVRecord]) -> None:
        """Preload the store outside the measured run (paper's YCSB setup)."""
        self.data_owner.preload(list(records))
