"""The GRuB system facade: wire the substrates together and drive workloads.

:class:`GrubSystem` assembles a blockchain, a storage-manager contract, a DU
contract, the off-chain SP with its authenticated store, and the DO with its
control plane, and exposes a single :meth:`GrubSystem.run` that drives a
workload (a sequence of :class:`~repro.common.types.Operation`) through the
whole stack epoch by epoch, returning a :class:`RunReport` with the gas series
the paper's figures plot.

The epoch loop models the paper's deployment:

1. Within an epoch, writes are buffered locally by the DO (no gas yet), while
   reads execute on chain immediately (they are internal calls of DU
   transactions that exist regardless of the feed): a read either hits an
   on-chain replica or emits a ``request`` event.
2. At the end of the epoch, the SP's watchdog answers all outstanding
   requests with a ``deliver`` transaction (batched by default), the DO runs
   the control plane and submits the epoch's ``update`` transaction, and a
   block is mined.

Gas is attributed to the feed layer or the application layer; the per-epoch
gas of the feed layer divided by the number of operations in the epoch is the
"Gas per operation" metric of the paper's time-series figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.ads.authenticated_kv import AuthenticatedKVStore
from repro.chain.chain import Blockchain
from repro.chain.gas import LAYER_APPLICATION, LAYER_FEED
from repro.common.clock import SimulatedClock
from repro.common.types import EpochSummary, KVRecord, Operation, OperationKind
from repro.core.config import GrubConfig
from repro.core.consistency import ConsistencyModel
from repro.core.control_plane import ControlPlane, DecisionActuator, WorkloadMonitor
from repro.core.data_consumer import DataConsumerContract
from repro.core.data_owner import DataOwner
from repro.core.decision.base import CostModel, make_algorithm
from repro.core.service_provider import ServiceProvider
from repro.core.storage_manager import StorageManagerContract


@dataclass
class RunReport:
    """Results of driving one workload through a system."""

    system_name: str
    operations: int = 0
    reads: int = 0
    writes: int = 0
    epochs: List[EpochSummary] = field(default_factory=list)
    gas_feed: int = 0
    gas_application: int = 0
    replications: int = 0
    evictions: int = 0
    deliveries: int = 0
    update_transactions: int = 0
    gas_by_category: Dict[str, int] = field(default_factory=dict)

    @property
    def gas_total(self) -> int:
        return self.gas_feed + self.gas_application

    @property
    def gas_per_operation(self) -> float:
        if self.operations == 0:
            return 0.0
        return self.gas_feed / self.operations

    @property
    def gas_per_operation_total(self) -> float:
        if self.operations == 0:
            return 0.0
        return self.gas_total / self.operations

    def epoch_series(self) -> List[float]:
        """Per-epoch feed gas per operation (the Y series of the paper's figures)."""
        return [epoch.gas_per_operation for epoch in self.epochs]

    def saving_versus(self, other: "RunReport") -> float:
        """Fractional gas saving of this run compared to ``other`` (positive = cheaper)."""
        if other.gas_feed == 0:
            return 0.0
        return 1.0 - self.gas_feed / other.gas_feed


class GrubSystem:
    """A fully wired GRuB deployment driven by workload operations."""

    name = "GRuB"

    def __init__(
        self,
        config: Optional[GrubConfig] = None,
        consumer_factory=None,
        preload: Optional[Sequence[KVRecord]] = None,
    ) -> None:
        self.config = config or GrubConfig()
        self.clock = SimulatedClock()
        self.chain = Blockchain(
            schedule=self.config.gas_schedule,
            parameters=self.config.chain_parameters,
            clock=self.clock,
        )
        self.storage_manager = StorageManagerContract(
            address="storage-manager",
            data_owner="data-owner",
            track_trace_on_chain=self._trace_mode(),
            reuse_replica_slots=self.config.reuse_replica_slots,
        )
        self.chain.deploy(self.storage_manager)
        if consumer_factory is None:
            self.consumer = DataConsumerContract("data-consumer", self.storage_manager.address)
        else:
            self.consumer = consumer_factory(self.storage_manager.address)
        self.chain.deploy(self.consumer)
        self.sp_store = AuthenticatedKVStore()
        self.service_provider = ServiceProvider(
            address="storage-provider",
            chain=self.chain,
            storage_manager=self.storage_manager,
            store=self.sp_store,
            batch_deliver=self.config.batch_deliver,
        )
        cost_model = CostModel.from_schedule(self.config.gas_schedule)
        self._cost_model = cost_model
        algorithm = make_algorithm(
            self.config.algorithm,
            cost_model,
            k=self.config.k,
            k_prime=self.config.k_prime,
            window_d=self.config.window_d,
            adaptive_history=self.config.adaptive_history,
        )
        control_plane = ControlPlane(
            monitor=WorkloadMonitor(storage_manager=self.storage_manager),
            algorithm=algorithm,
            actuator=DecisionActuator(),
            evict_unused_after_epochs=self.config.evict_unused_after_epochs,
            continuous=self.config.continuous_decisions,
        )
        self.data_owner = DataOwner(
            address="data-owner",
            chain=self.chain,
            storage_manager=self.storage_manager,
            sp_store=self.sp_store,
            control_plane=control_plane,
        )
        if self.config.deliver_replication_hint and self.config.algorithm not in ("always", "never"):
            self.service_provider.decision_lookup = control_plane.decision_for
        self.consistency = ConsistencyModel(
            epoch_seconds=self.config.epoch_size * 1.0,
            chain=self.config.chain_parameters,
        )
        if preload:
            self.data_owner.preload(list(preload))

    # -- construction helpers ----------------------------------------------------

    def _trace_mode(self) -> str:
        return "off"

    def set_future_trace(self, operations: Sequence[Operation]) -> None:
        """Give a clairvoyant (offline-optimal) algorithm the full future trace."""
        algorithm = make_algorithm(
            "offline",
            self._cost_model,
            future_trace=list(operations),
        )
        self.data_owner.control_plane.algorithm = algorithm

    # -- workload driving -----------------------------------------------------------

    def run(
        self,
        operations: Iterable[Operation],
        *,
        phase_markers: Optional[Dict[int, str]] = None,
    ) -> RunReport:
        """Drive ``operations`` through the system, one epoch at a time."""
        report = RunReport(system_name=self.name)
        epoch_ops: List[Operation] = []
        for operation in operations:
            epoch_ops.append(operation)
            if len(epoch_ops) >= self.config.epoch_size:
                self._run_epoch(epoch_ops, report, phase_markers)
                epoch_ops = []
        if epoch_ops:
            self._run_epoch(epoch_ops, report, phase_markers)
        self._finalise_report(report)
        return report

    def _run_epoch(
        self,
        operations: List[Operation],
        report: RunReport,
        phase_markers: Optional[Dict[int, str]],
    ) -> None:
        feed_before = self.chain.ledger.feed_total
        app_before = self.chain.ledger.application_total
        index = len(report.epochs)
        self.storage_manager.current_epoch_hint = index
        summary = EpochSummary(index=index, operations=len(operations))
        if phase_markers and report.operations in phase_markers:
            summary.extras["phase"] = phase_markers[report.operations]

        for operation in operations:
            if operation.is_write:
                value = operation.value
                if value is None:
                    value = b"\x00" * self.config.record_size_bytes
                self.data_owner.put(operation.key, value)
                summary.writes += 1
                report.writes += 1
            elif operation.kind is OperationKind.SCAN:
                keys = self._scan_keys(operation)
                self.chain.execute_internal_call(
                    sender="end-user",
                    contract_address=self.consumer.address,
                    function="scan_feed",
                    layer=LAYER_FEED,
                    start_key=operation.key,
                    keys=keys,
                )
                summary.reads += 1
                report.reads += 1
            else:
                self.chain.execute_internal_call(
                    sender="end-user",
                    contract_address=self.consumer.address,
                    function="query_feed",
                    layer=LAYER_FEED,
                    key=operation.key,
                )
                summary.reads += 1
                report.reads += 1
            report.operations += 1
            if self.config.continuous_decisions and operation.is_read:
                # The DO's full node sees the gGet in the next block; feed it
                # to the decision algorithm straight away.
                self.data_owner.control_plane.observe_chain_reads()
            if not self.config.batch_deliver:
                # Immediate delivery: the watchdog answers each request as it
                # appears rather than waiting for the end of the epoch.
                self.service_provider.service_epoch()
                self.chain.mine_block()

        # End of epoch: the SP answers outstanding requests first (its deliver
        # may already materialise pending NR→R decisions via the replicate
        # hint), then the DO's update transaction lands in the next block.
        deliver_txs = self.service_provider.service_epoch()
        if deliver_txs:
            self.chain.mine_block()
        update_result = self.data_owner.end_epoch()
        self.chain.mine_block()

        summary.deliveries = len(deliver_txs)
        summary.update_transactions = 1 if update_result.transaction is not None else 0
        summary.replications = sum(
            1 for state in update_result.transitions.values() if state.value == "R"
        )
        summary.evictions = sum(
            1 for state in update_result.transitions.values() if state.value == "NR"
        )
        summary.gas_feed = self.chain.ledger.feed_total - feed_before
        summary.gas_application = self.chain.ledger.application_total - app_before
        report.epochs.append(summary)
        report.gas_feed += summary.gas_feed
        report.gas_application += summary.gas_application
        report.replications += summary.replications
        report.evictions += summary.evictions
        report.deliveries += summary.deliveries
        report.update_transactions += summary.update_transactions

    def _scan_keys(self, operation: Operation) -> List[str]:
        keys = self.sp_store.keys()
        if not keys:
            return [operation.key]
        import bisect

        start = bisect.bisect_left(keys, operation.key)
        selected = keys[start : start + operation.scan_length]
        return selected or [operation.key]

    def _finalise_report(self, report: RunReport) -> None:
        report.gas_by_category = dict(self.chain.ledger.by_category)

    # -- convenience views ---------------------------------------------------------

    @property
    def replicated_on_chain(self) -> int:
        return self.storage_manager.replica_count()

    def preload_records(self, records: Sequence[KVRecord]) -> None:
        """Preload the store outside the measured run (paper's YCSB setup)."""
        self.data_owner.preload(list(records))
