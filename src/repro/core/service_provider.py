"""The storage provider (SP): untrusted off-chain cloud storage + watchdog.

The SP holds the primary copy of the feed in its authenticated KV store and
runs a watchdog daemon that tails the blockchain event log.  When the
storage-manager contract emits a ``request`` event (a DU asked for a record
that has no on-chain replica), the watchdog looks the record up, attaches its
Merkle proof, and answers with a ``deliver`` transaction.

Two delivery modes are supported:

* **epoch-batched** (default, matching the paper's epoch-batched transaction
  accounting): pending requests accumulate and are answered in one ``deliver``
  transaction per epoch, amortising the transaction base cost;
* **immediate**: one ``deliver`` transaction per request, used by the
  ablation benchmark that quantifies the value of batching.

The SP is the protocol's adversary.  :class:`TamperingServiceProvider` wraps
the honest behaviour with configurable corruptions (forge a value, replay a
stale record's proof, omit a requested record, serve a forked root) so tests
can show the on-chain verification rejects each of them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.ads.authenticated_kv import AuthenticatedKVStore
from repro.chain.chain import Blockchain
from repro.chain.gas import LAYER_FEED
from repro.chain.transaction import Transaction
from repro.common.types import ReplicationState
from repro.core.storage_manager import CallbackRef, DeliverItem, StorageManagerContract


@dataclass
class PendingRequest:
    """One request event the watchdog has seen but not yet answered."""

    key: str
    consumer: str
    callback: str
    context: Dict[str, object] = field(default_factory=dict)

    @staticmethod
    def from_event(event) -> List["PendingRequest"]:
        """Decode a ``request``/``request_range`` log event into requests.

        The single source of the event wire format, shared by the per-feed
        watchdog (:meth:`ServiceProvider.poll_requests`) and the gateway's
        :class:`~repro.gateway.watchdog.SharedWatchdog`; other event names
        decode to an empty list.
        """
        if event.name == "request":
            return [
                PendingRequest(
                    key=event.payload["key"],
                    consumer=event.payload["consumer"],
                    callback=event.payload.get("callback", "on_data"),
                    context=dict(event.payload.get("context", {})),
                )
            ]
        if event.name == "request_range":
            return [
                PendingRequest(
                    key=key,
                    consumer=event.payload["consumer"],
                    callback=event.payload.get("callback", "on_data"),
                )
                for key in event.payload["keys"]
            ]
        return []


@dataclass
class ServiceProvider:
    """Honest SP: serves requests with correct records and proofs."""

    address: str
    chain: Blockchain
    storage_manager: StorageManagerContract
    store: AuthenticatedKVStore
    batch_deliver: bool = True
    #: Optional callable mapping a key to the DO's current replication
    #: decision; when set, delivers carry ``replicate=True`` for keys the DO
    #: wants replicated even before the next epoch update lands (the paper's
    #: deliver-time ``replicate`` flag).
    decision_lookup: Optional[Callable[[str], ReplicationState]] = None
    #: Gas-attribution scope stamped on the SP's transactions (the feed id
    #: when the feed is hosted by the multi-tenant gateway).
    scope: Optional[str] = None
    _log_cursor: int = 0
    pending: List[PendingRequest] = field(default_factory=list)
    deliveries_sent: int = 0
    records_delivered: int = 0

    # -- watchdog ------------------------------------------------------------

    def poll_requests(self) -> int:
        """Scan the event log for new request events; returns how many were found."""
        events = self.chain.event_log.filter(
            contract=self.storage_manager.address, since=self._log_cursor
        )
        self._log_cursor = len(self.chain.event_log)
        found = 0
        for event in events:
            requests = PendingRequest.from_event(event)
            self.pending.extend(requests)
            found += len(requests)
        return found

    def register_request(
        self, key: str, consumer: str, callback: str = "on_data", **context: object
    ) -> None:
        """Directly register a pending request (used when the simulation routes
        request events to the SP without going through the mined event log)."""
        self.pending.append(
            PendingRequest(key=key, consumer=consumer, callback=callback, context=dict(context))
        )

    # -- deliver -------------------------------------------------------------------

    def build_deliver_items(self, requests: List[PendingRequest]) -> List[DeliverItem]:
        """Look up requested records and attach proofs (honest behaviour).

        Proofs for the whole batch are generated in one tree pass
        (:meth:`AuthenticatedKVStore.query_many`) rather than one root-path
        walk per request; duplicate keys within the batch share one result.
        """
        items: List[DeliverItem] = []
        seen_keys: set = set()
        results = self.store.query_many([request.key for request in requests])
        for request in requests:
            result = results[request.key]
            if result.record is None:
                # Honest SP answers misses by omitting the record; the DU's
                # callback simply never fires for an unknown key.
                continue
            replicate = result.record.state is ReplicationState.REPLICATED
            if self.decision_lookup is not None:
                replicate = self.decision_lookup(request.key) is ReplicationState.REPLICATED
            if replicate and request.key in seen_keys:
                # The first delivery of an epoch already inserts the replica;
                # later duplicates only need to trigger the callback.
                replicate = False
            seen_keys.add(request.key)
            items.append(
                DeliverItem(
                    key=request.key,
                    value=result.record.value,
                    replicate=replicate,
                    proof=result.proof,
                    state_prefix=result.record.state.prefix,
                    callback=CallbackRef.make(
                        request.consumer, request.callback, **request.context
                    ),
                )
            )
        return items

    def drain_pending_items(self) -> List[DeliverItem]:
        """Drain pending requests into deliver items without submitting a
        transaction.

        Used by the multi-tenant gateway, which lands the items inside a
        batched router transaction shared with other feeds; the SP's delivery
        counters are updated here so they stay correct in both deployments.
        """
        if not self.pending:
            return []
        requests, self.pending = self.pending, []
        items = self.build_deliver_items(requests)
        if items:
            self.deliveries_sent += 1
            self.records_delivered += len(items)
        return items

    def flush_deliveries(self) -> List[Transaction]:
        """Answer pending requests, either in one batched transaction or one each."""
        if not self.pending:
            return []
        requests, self.pending = self.pending, []
        groups: List[List[PendingRequest]]
        if self.batch_deliver:
            groups = [requests]
        else:
            groups = [[request] for request in requests]
        transactions: List[Transaction] = []
        for group in groups:
            items = self.build_deliver_items(group)
            if not items:
                continue
            calldata = sum(item.calldata_bytes for item in items)
            transaction = Transaction(
                sender=self.address,
                contract=self.storage_manager.address,
                function="deliver",
                args={"items": items},
                calldata_bytes=calldata,
                layer=LAYER_FEED,
                scope=self.scope,
            )
            self.chain.submit(transaction)
            transactions.append(transaction)
            self.deliveries_sent += 1
            self.records_delivered += len(items)
        return transactions

    def service_epoch(self) -> List[Transaction]:
        """One watchdog cycle: poll the log, then answer what was found."""
        self.poll_requests()
        return self.flush_deliveries()


@dataclass
class TamperingServiceProvider(ServiceProvider):
    """Adversarial SP used by the security tests.

    ``attack`` selects the corruption applied to delivered records:

    * ``"forge"`` — deliver a different value under the correct key,
    * ``"replay"`` — deliver a stale value captured before the latest update,
    * ``"omit"`` — silently drop a fraction of requested records,
    * ``"fork"`` — generate proofs against a private fork of the store.

    The only stochastic choice (which requests an ``omit`` attack drops) is
    driven by ``seed`` — or an explicitly injected ``rng`` — so adversarial
    runs are reproducible like every other component.
    """

    attack: str = "forge"
    stale_snapshot: Dict[str, bytes] = field(default_factory=dict)
    omit_probability: float = 1.0
    seed: int = 7
    rng: Optional[random.Random] = None
    attacks_attempted: int = 0

    def __post_init__(self) -> None:
        if self.rng is None:
            self.rng = random.Random(self.seed)

    def capture_snapshot(self) -> None:
        """Remember current values so a later ``replay`` can serve stale data."""
        self.stale_snapshot = {
            record.key: record.value for record in self.store.records()
        }

    def build_deliver_items(self, requests: List[PendingRequest]) -> List[DeliverItem]:
        items = super().build_deliver_items(requests)
        corrupted: List[DeliverItem] = []
        for item in items:
            self.attacks_attempted += 1
            if self.attack == "forge":
                corrupted.append(
                    DeliverItem(
                        key=item.key,
                        value=item.value + b"-forged",
                        replicate=item.replicate,
                        proof=item.proof,
                        state_prefix=item.state_prefix,
                        callback=item.callback,
                    )
                )
            elif self.attack == "replay":
                stale = self.stale_snapshot.get(item.key, item.value + b"-missing")
                corrupted.append(
                    DeliverItem(
                        key=item.key,
                        value=stale,
                        replicate=item.replicate,
                        proof=item.proof,
                        state_prefix=item.state_prefix,
                        callback=item.callback,
                    )
                )
            elif self.attack == "omit":
                if self.rng.random() < self.omit_probability:
                    continue
                corrupted.append(item)
            elif self.attack == "fork":
                forked_store = AuthenticatedKVStore()
                forked_store.load(
                    [record.with_value(record.value + b"-fork") for record in self.store.records()]
                )
                result = forked_store.query(item.key)
                corrupted.append(
                    DeliverItem(
                        key=item.key,
                        value=result.record.value,
                        replicate=item.replicate,
                        proof=result.proof,
                        state_prefix=result.record.state.prefix,
                        callback=item.callback,
                    )
                )
            else:
                corrupted.append(item)
        return corrupted
