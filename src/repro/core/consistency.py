"""The consistency / freshness model (Section 3.4 and Appendix E of the paper).

The guarantees GRuB provides between ``gPut`` and ``gGet`` are stated in terms
of four timing parameters:

* ``E`` — the epoch length (how long the DO buffers updates before sending the
  batched ``update`` transaction),
* ``Pt`` — the time it takes a submitted transaction to propagate to every
  node,
* ``B`` — the average block interval, and
* ``F`` — the number of blocks after which a transaction is considered final.

Two regimes follow:

* **concurrent** operations (a ``gGet`` executed within ``E + Pt + B*F`` of a
  ``gPut`` on the same key) have non-deterministic but eventually consistent
  ordering — whichever order the chain serialises them in, every node agrees
  once the involved transactions are final (Theorem 3.1 / E.1);
* **sequential** operations (a ``gGet`` at least ``E + Pt + B*F`` after the
  ``gPut``) are guaranteed to observe the update: epoch-bounded freshness
  (Theorem 3.2 / E.2).

This module packages those bounds so the system facade can stamp operations
with the regime they fall into and the tests can check the theorems against
the simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.chain.chain import ChainParameters


class OrderingRegime(Enum):
    """Which consistency statement applies to a gPut/gGet pair."""

    CONCURRENT = "concurrent"
    SEQUENTIAL = "sequential"


@dataclass(frozen=True)
class ConsistencyModel:
    """Freshness and ordering bounds derived from the timing parameters."""

    epoch_seconds: float
    chain: ChainParameters

    @property
    def finality_delay(self) -> float:
        """``Pt + B * F``: submission-to-finality latency of one transaction."""
        return (
            self.chain.propagation_delay
            + self.chain.block_interval * self.chain.finality_depth
        )

    @property
    def freshness_bound(self) -> float:
        """``E + Pt + B * F``: the worst-case staleness a sequential gGet can see.

        An update produced at time ``t`` is included in the epoch batch by
        ``t + E``, propagates by ``t + E + Pt`` and is final by
        ``t + E + Pt + B*F``; any gGet executed after that instant observes it
        (Theorem 3.2).
        """
        return self.epoch_seconds + self.finality_delay

    def classify(self, put_time: float, get_time: float) -> OrderingRegime:
        """Classify a gPut/gGet pair into the concurrent or sequential regime."""
        if get_time < put_time:
            return OrderingRegime.CONCURRENT
        if get_time - put_time < self.freshness_bound:
            return OrderingRegime.CONCURRENT
        return OrderingRegime.SEQUENTIAL

    def guarantees_freshness(self, put_time: float, get_time: float) -> bool:
        """True when Theorem 3.2 guarantees the gGet observes the gPut."""
        return self.classify(put_time, get_time) is OrderingRegime.SEQUENTIAL

    def immediate_feed_freshness(self) -> float:
        """Freshness of the BL2-style unbatched feed: ``Pt + B * F``.

        The paper notes delay-sensitive applications can opt individual
        updates out of batching, recovering the unbatched bound.
        """
        return self.finality_delay
