"""Shared interface and cost model for the replication decision algorithms."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.chain.gas import GasSchedule
from repro.common.errors import ConfigurationError
from repro.common.types import Operation, ReplicationState


@dataclass(frozen=True)
class Decision:
    """A per-key replication decision emitted by an algorithm run."""

    key: str
    state: ReplicationState

    @property
    def replicate(self) -> bool:
        return self.state is ReplicationState.REPLICATED


@dataclass(frozen=True)
class CostModel:
    """The per-word gas quantities the algorithms reason about.

    The paper's parameter configuration (Equation 1 and the memorizing
    algorithm's K') is defined in terms of two unit costs:

    * ``update_cost`` — gas to update a word of on-chain storage
      (``C_update``), and
    * ``off_chain_read_cost`` — gas to move one word from off chain onto the
      chain in calldata (``C_read_off``).

    ``insert_cost`` and ``on_chain_read_cost`` are carried for the offline
    optimal algorithm, which charges full placement costs per interval.
    """

    update_cost: int
    off_chain_read_cost: int
    insert_cost: int
    on_chain_read_cost: int

    @classmethod
    def from_schedule(cls, schedule: GasSchedule) -> "CostModel":
        return cls(
            update_cost=schedule.storage_update_per_word,
            off_chain_read_cost=schedule.transaction_word,
            insert_cost=schedule.storage_insert_per_word,
            on_chain_read_cost=schedule.storage_read_per_word,
        )

    @property
    def equation_one_k(self) -> int:
        """The paper's Equation 1: ``K = C_update / C_read_off`` (≥ 1)."""
        return max(1, round(self.update_cost / self.off_chain_read_cost))


class DecisionAlgorithm(ABC):
    """Interface every replication decision algorithm implements.

    ``observe`` consumes a batch of operations (one control-plane run, i.e.
    one epoch's federated trace) and returns the decisions for every key whose
    state changed.  ``state_of`` reports the current decision for a key so the
    data plane can consult it when new keys appear mid-epoch.
    """

    name: str = "abstract"

    def __init__(self) -> None:
        self._states: Dict[str, ReplicationState] = {}

    @abstractmethod
    def observe(self, operations: Iterable[Operation]) -> List[Decision]:
        """Consume one batch of operations, returning the changed decisions."""

    def state_of(self, key: str) -> ReplicationState:
        """Current replication decision for ``key`` (NR when never seen)."""
        return self._states.get(key, ReplicationState.NOT_REPLICATED)

    def states(self) -> Dict[str, ReplicationState]:
        """Copy of the full decision map (for inspection and tests)."""
        return dict(self._states)

    def reset(self) -> None:
        """Forget all decisions and internal counters."""
        self._states.clear()

    # -- helpers shared by implementations ----------------------------------

    def _set_state(
        self, key: str, state: ReplicationState, changed: List[Decision]
    ) -> None:
        previous = self._states.get(key, ReplicationState.NOT_REPLICATED)
        self._states[key] = state
        if previous is not state:
            changed.append(Decision(key=key, state=state))


def make_algorithm(
    name: str,
    cost_model: CostModel,
    *,
    k: Optional[int] = None,
    k_prime: Optional[int] = None,
    window_d: int = 1,
    adaptive_history: int = 3,
    future_trace: Optional[List[Operation]] = None,
) -> DecisionAlgorithm:
    """Factory used by :class:`~repro.core.config.GrubConfig` consumers.

    ``future_trace`` is only meaningful for the offline optimal algorithm,
    which is clairvoyant by definition.
    """
    from repro.core.decision.adaptive import AdaptiveKAlgorithm
    from repro.core.decision.memorizing import MemorizingAlgorithm
    from repro.core.decision.memoryless import MemorylessAlgorithm
    from repro.core.decision.offline import OfflineOptimalAlgorithm
    from repro.core.decision.static import StaticAlgorithm

    if name == "memoryless":
        return MemorylessAlgorithm(k=k if k is not None else cost_model.equation_one_k)
    if name == "memorizing":
        return MemorizingAlgorithm(
            k_prime=k_prime if k_prime is not None else cost_model.equation_one_k,
            window_d=window_d,
        )
    if name == "adaptive-k1":
        return AdaptiveKAlgorithm(
            base_k=k if k is not None else cost_model.equation_one_k,
            history=adaptive_history,
            repeat_history=True,
        )
    if name == "adaptive-k2":
        return AdaptiveKAlgorithm(
            base_k=k if k is not None else cost_model.equation_one_k,
            history=adaptive_history,
            repeat_history=False,
        )
    if name == "offline":
        return OfflineOptimalAlgorithm(cost_model=cost_model, trace=future_trace or [])
    if name == "always":
        return StaticAlgorithm(ReplicationState.REPLICATED)
    if name == "never":
        return StaticAlgorithm(ReplicationState.NOT_REPLICATED)
    raise ConfigurationError(f"unknown decision algorithm {name!r}")
