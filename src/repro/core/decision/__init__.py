"""Online replication decision algorithms (the GRuB control-plane brain).

All algorithms consume a trace of read/write operations and maintain, per data
key, a replication decision (R or NR).  They share the
:class:`~repro.core.decision.base.DecisionAlgorithm` interface so the control
plane, the baselines and the experiment runners can swap them freely:

* :class:`MemorylessAlgorithm` — the paper's Algorithm 1: count consecutive
  reads since the last write and replicate once the count reaches K; any
  write resets the record to NR.  2-competitive when K follows Equation 1.
* :class:`MemorizingAlgorithm` — the paper's Algorithm 2: long-run read and
  write counters with a hysteresis window D, (4D+2)/K'-competitive.
* :class:`AdaptiveKAlgorithm` — the Appendix C.3 heuristics that re-estimate
  K from recent history (policy K1 assumes the future repeats the past,
  policy K2 assumes it does not).
* :class:`OfflineOptimalAlgorithm` — clairvoyant baseline that sees the whole
  trace and picks the cheaper placement for every inter-write interval; used
  to measure competitiveness (Figure 8a).
* :class:`StaticAlgorithm` — the degenerate always-replicate / never-replicate
  policies backing baselines BL2 and BL1.
"""

from repro.core.decision.base import (
    CostModel,
    Decision,
    DecisionAlgorithm,
    make_algorithm,
)
from repro.core.decision.memoryless import MemorylessAlgorithm
from repro.core.decision.memorizing import MemorizingAlgorithm
from repro.core.decision.adaptive import AdaptiveKAlgorithm
from repro.core.decision.offline import OfflineOptimalAlgorithm
from repro.core.decision.static import StaticAlgorithm

__all__ = [
    "CostModel",
    "Decision",
    "DecisionAlgorithm",
    "make_algorithm",
    "MemorylessAlgorithm",
    "MemorizingAlgorithm",
    "AdaptiveKAlgorithm",
    "OfflineOptimalAlgorithm",
    "StaticAlgorithm",
]
