"""The memorizing online algorithm (the paper's Algorithm 2).

Unlike the memoryless algorithm, this one remembers the operation history
across runs: per data key it keeps a long-run read counter and a long-run
write counter, and flips the replication state with a hysteresis window D:

* flip NR → R once ``wCount * K' + D <= rCount`` (reads have outpaced writes
  by the window), and
* flip R → NR once ``wCount * K' - D >= rCount`` (writes have outpaced reads).

After a flip the counters are re-centred (reads trimmed to D on an NR→R flip,
writes trimmed to D/K' on an R→NR flip) so the algorithm stays responsive to
workload shifts instead of being dominated by ancient history.  Theorem A.2
bounds its competitiveness by (4D+2)/K'.

Because the flip conditions compare long-run counters, the algorithm exploits
temporal locality: once a key has proven read-heavy it stays replicated across
occasional writes, which the memoryless algorithm cannot do.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.common.errors import ConfigurationError
from repro.common.types import Operation, ReplicationState
from repro.core.decision.base import Decision, DecisionAlgorithm


class MemorizingAlgorithm(DecisionAlgorithm):
    """Hysteresis-based replication decisions over long-run read/write counters."""

    name = "memorizing"

    def __init__(self, k_prime: int, window_d: int = 1) -> None:
        super().__init__()
        if k_prime <= 0:
            raise ConfigurationError("K' must be a positive integer")
        if window_d < 0:
            raise ConfigurationError("D must be non-negative")
        self.k_prime = k_prime
        self.window_d = window_d
        self._read_counts: Dict[str, int] = {}
        self._write_counts: Dict[str, int] = {}

    def observe(self, operations: Iterable[Operation]) -> List[Decision]:
        changed: List[Decision] = []
        for op in operations:
            key = op.key
            if op.is_write:
                self._write_counts[key] = self._write_counts.get(key, 0) + 1
            else:
                self._read_counts[key] = self._read_counts.get(key, 0) + 1
            reads = self._read_counts.get(key, 0)
            writes = self._write_counts.get(key, 0)
            current = self.state_of(key)
            if writes * self.k_prime + self.window_d <= reads:
                if current is not ReplicationState.REPLICATED:
                    self._set_state(key, ReplicationState.REPLICATED, changed)
                    # Re-centre the counters so the hysteresis window governs
                    # the *next* flip rather than being swamped by the reads
                    # accumulated before this one.
                    self._write_counts[key] = 0
                    self._read_counts[key] = self.window_d
            elif writes * self.k_prime - self.window_d >= reads:
                if current is ReplicationState.REPLICATED:
                    self._set_state(key, ReplicationState.NOT_REPLICATED, changed)
                    self._read_counts[key] = 0
                    self._write_counts[key] = self.window_d // self.k_prime
        return changed

    def counters(self, key: str) -> Dict[str, int]:
        """Current (reads, writes) counters for a key, for inspection."""
        return {
            "reads": self._read_counts.get(key, 0),
            "writes": self._write_counts.get(key, 0),
        }

    def reset(self) -> None:
        super().reset()
        self._read_counts.clear()
        self._write_counts.clear()

    def worst_case_competitiveness(self) -> float:
        """The bound of Theorem A.2: ``(4D + 2) / K'``."""
        return (4 * self.window_d + 2) / self.k_prime
