"""Static (workload-oblivious) replication policies.

These back the paper's two static baselines: BL1 never replicates (data lives
only on the SP; every read is served by a deliver transaction) and BL2 always
replicates (every record also lives in contract storage; every write pays the
on-chain storage update).  Expressing them as decision algorithms lets the
baselines reuse the exact same data plane as GRuB, so the gas comparison is an
apples-to-apples comparison of *decisions*, not of plumbing.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.common.types import Operation, ReplicationState
from repro.core.decision.base import Decision, DecisionAlgorithm


class StaticAlgorithm(DecisionAlgorithm):
    """Always answer with one fixed replication state for every key."""

    def __init__(self, state: ReplicationState) -> None:
        super().__init__()
        self.fixed_state = state
        self.name = "always-replicate" if state is ReplicationState.REPLICATED else "never-replicate"

    def observe(self, operations: Iterable[Operation]) -> List[Decision]:
        changed: List[Decision] = []
        for op in operations:
            self._set_state(op.key, self.fixed_state, changed)
        return changed

    def state_of(self, key: str) -> ReplicationState:
        return self.fixed_state
