"""Adaptive-K heuristics (the paper's Appendix C.3).

The static K of Equation 1 guarantees bounded competitiveness but ignores the
workload.  The adaptive heuristics re-estimate, on every write, the expected
number of reads that will follow it as the average reads-per-write over a
short window of recent writes (the paper uses the last three), and compare the
prediction against the Equation-1 threshold:

* **policy K1** ("the future repeats the past"): replicate the freshly
  written record when the predicted reads-per-write exceeds the threshold.
* **policy K2** (the dual: "the future does not repeat the past"): replicate
  when the prediction is *below* the threshold.

The paper finds K1 slightly worse and K2 noticeably better than static K on
the ethPriceOracle trace (Table 5), which is the behaviour the corresponding
benchmark reproduces.

Between writes, reads still accumulate a consecutive-read counter so the
heuristic retains the memoryless algorithm's safety net: a key whose reads
exceed the static threshold is replicated regardless of the prediction.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List

from repro.common.errors import ConfigurationError
from repro.common.types import Operation, ReplicationState
from repro.core.decision.base import Decision, DecisionAlgorithm


class AdaptiveKAlgorithm(DecisionAlgorithm):
    """Re-estimate K per write from recent reads-per-write history."""

    name = "adaptive-k"

    def __init__(self, base_k: int, history: int = 3, repeat_history: bool = True) -> None:
        super().__init__()
        if base_k <= 0:
            raise ConfigurationError("base K must be a positive integer")
        if history <= 0:
            raise ConfigurationError("history window must be positive")
        self.base_k = base_k
        self.history = history
        self.repeat_history = repeat_history
        self.name = "adaptive-k1" if repeat_history else "adaptive-k2"
        self._reads_since_write: Dict[str, int] = {}
        self._recent_reads_per_write: Dict[str, Deque[int]] = {}

    def observe(self, operations: Iterable[Operation]) -> List[Decision]:
        changed: List[Decision] = []
        for op in operations:
            key = op.key
            if op.is_write:
                history = self._recent_reads_per_write.setdefault(
                    key, deque(maxlen=self.history)
                )
                history.append(self._reads_since_write.get(key, 0))
                self._reads_since_write[key] = 0
                predicted_k = sum(history) / len(history)
                if self.repeat_history:
                    replicate = predicted_k > self.base_k
                else:
                    replicate = predicted_k <= self.base_k
                self._set_state(
                    key,
                    ReplicationState.REPLICATED
                    if replicate
                    else ReplicationState.NOT_REPLICATED,
                    changed,
                )
            else:
                count = self._reads_since_write.get(key, 0) + 1
                self._reads_since_write[key] = count
                if (
                    count >= self.base_k
                    and self.state_of(key) is ReplicationState.NOT_REPLICATED
                ):
                    self._set_state(key, ReplicationState.REPLICATED, changed)
        return changed

    def predicted_reads_per_write(self, key: str) -> float:
        """Current prediction for ``key`` (0 when no history yet)."""
        history = self._recent_reads_per_write.get(key)
        if not history:
            return 0.0
        return sum(history) / len(history)

    def reset(self) -> None:
        super().reset()
        self._reads_since_write.clear()
        self._recent_reads_per_write.clear()
