"""The memoryless online algorithm (the paper's Algorithm 1).

Per data key the algorithm keeps one counter: the number of consecutive reads
observed since the most recent write.  A write resets the counter and forces
the key back to NR; once the counter reaches the threshold K the key flips to
R and stops being counted.  With K set by Equation 1
(``K = C_update / C_read_off``) the algorithm is 2-competitive in worst-case
gas (Theorem A.1).

The algorithm is "memoryless" in the sense that a single write erases
everything it learned about the key's read popularity.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.common.errors import ConfigurationError
from repro.common.types import Operation, OperationKind, ReplicationState
from repro.core.decision.base import Decision, DecisionAlgorithm


class MemorylessAlgorithm(DecisionAlgorithm):
    """Replicate a key after K consecutive reads; un-replicate on any write."""

    name = "memoryless"

    def __init__(self, k: int) -> None:
        super().__init__()
        if k <= 0:
            raise ConfigurationError("K must be a positive integer")
        self.k = k
        self._counters: Dict[str, int] = {}

    def observe(self, operations: Iterable[Operation]) -> List[Decision]:
        changed: List[Decision] = []
        for op in operations:
            # `kind is WRITE` inlines the is_write property; this loop sees
            # every operation of every epoch's federated trace.
            if op.kind is OperationKind.WRITE:
                self._counters[op.key] = 0
                self._set_state(op.key, ReplicationState.NOT_REPLICATED, changed)
            else:
                count = self._counters.get(op.key, 0)
                if count < self.k:
                    count += 1
                    self._counters[op.key] = count
                if count >= self.k:
                    self._set_state(op.key, ReplicationState.REPLICATED, changed)
                else:
                    self._set_state(op.key, ReplicationState.NOT_REPLICATED, changed)
        return changed

    def read_count(self, key: str) -> int:
        """Consecutive reads recorded for ``key`` since its last write."""
        return self._counters.get(key, 0)

    def reset(self) -> None:
        super().reset()
        self._counters.clear()

    def worst_case_competitiveness(self, update_cost: int, off_chain_read_cost: int) -> float:
        """The bound of Theorem A.1: ``1 + K * C_read_off / C_update``."""
        return 1.0 + self.k * off_chain_read_cost / update_cost
