"""The clairvoyant offline optimal algorithm.

Used only as the yardstick in the competitiveness analysis and in Figure 8a:
the algorithm sees the whole future trace, so for every write it can count how
many reads will follow before the next write of the same key and place the
record optimally for that interval:

* if the upcoming reads would cost more to serve off chain than the one-time
  storage update, replicate at the time of the write;
* otherwise leave the record off chain.

The decision for an interval is therefore ``replicate iff
reads_in_interval * C_read_off >= C_update`` (per word), which is exactly the
comparison the online algorithms approximate without knowing the future.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence

from repro.common.types import Operation, ReplicationState
from repro.core.decision.base import CostModel, Decision, DecisionAlgorithm


class OfflineOptimalAlgorithm(DecisionAlgorithm):
    """Optimal per-interval placement computed from the full future trace."""

    name = "offline-optimal"

    def __init__(self, cost_model: CostModel, trace: Sequence[Operation]) -> None:
        super().__init__()
        self.cost_model = cost_model
        self._future_reads: Dict[str, List[int]] = {}
        self._write_cursor: Dict[str, int] = defaultdict(int)
        self._precompute(list(trace))

    def _precompute(self, trace: List[Operation]) -> None:
        """For every write in the trace, count the reads before the next write."""
        reads_between: Dict[str, List[int]] = defaultdict(list)
        open_interval: Dict[str, int] = {}
        for op in trace:
            if op.is_write:
                if op.key in open_interval:
                    reads_between[op.key].append(open_interval[op.key])
                open_interval[op.key] = 0
            else:
                if op.key in open_interval:
                    open_interval[op.key] += 1
                else:
                    # Reads before the first write of a key belong to a
                    # virtual interval opened by the preloaded value.
                    reads_between.setdefault(op.key, [])
                    open_interval[op.key] = 1
        for key, count in open_interval.items():
            reads_between[key].append(count)
        self._future_reads = dict(reads_between)

    def _interval_decision(self, key: str, interval_index: int) -> ReplicationState:
        intervals = self._future_reads.get(key, [])
        if interval_index >= len(intervals):
            return ReplicationState.NOT_REPLICATED
        reads = intervals[interval_index]
        replicate = (
            reads * self.cost_model.off_chain_read_cost >= self.cost_model.update_cost
        )
        return (
            ReplicationState.REPLICATED if replicate else ReplicationState.NOT_REPLICATED
        )

    def observe(self, operations: Iterable[Operation]) -> List[Decision]:
        changed: List[Decision] = []
        for op in operations:
            key = op.key
            if op.is_write:
                decision = self._interval_decision(key, self._write_cursor[key])
                self._write_cursor[key] += 1
                self._set_state(key, decision, changed)
            else:
                if key not in self._states:
                    # First touch is a read: the preload interval's decision.
                    decision = self._interval_decision(key, 0)
                    self._set_state(key, decision, changed)
        return changed

    def reset(self) -> None:
        super().reset()
        self._write_cursor.clear()
