"""The GRuB core: workload-adaptive data replication between chain and cloud.

This package implements the paper's primary contribution:

* :mod:`repro.core.decision` — the online replication decision algorithms
  (memoryless Algorithm 1, memorizing Algorithm 2, the adaptive-K heuristics
  of Appendix C.3, the offline optimal used as the competitiveness yardstick,
  and the static always/never policies used by the baselines),
* :mod:`repro.core.control_plane` — workload monitor, algorithm executor and
  decision actuator running on the trusted data owner,
* :mod:`repro.core.data_plane` — the write path (epoch-batched ``gPuts`` with
  ADS updates) and the read path (``gGet`` with request events and SP
  ``deliver`` transactions),
* :mod:`repro.core.storage_manager` — the on-chain storage-manager contract
  (the paper's Listing 2),
* :mod:`repro.core.grub` / :mod:`repro.core.baselines` — end-to-end system
  facades for GRuB and the static/dynamic baselines BL1, BL2, BL3, BL4,
* :mod:`repro.core.consistency` — the epoch/finality timing model behind the
  freshness guarantees (Theorems 3.1/3.2).
"""

from repro.core.config import GrubConfig
from repro.core.grub import GrubSystem, RunReport
from repro.core.baselines import (
    NoReplicationSystem,
    AlwaysReplicateSystem,
    OnChainTraceSystem,
    OnChainReadTraceSystem,
)
from repro.core.storage_manager import StorageManagerContract
from repro.core.data_consumer import DataConsumerContract
from repro.core.decision import (
    DecisionAlgorithm,
    MemorylessAlgorithm,
    MemorizingAlgorithm,
    AdaptiveKAlgorithm,
    OfflineOptimalAlgorithm,
    StaticAlgorithm,
)

__all__ = [
    "GrubConfig",
    "GrubSystem",
    "RunReport",
    "NoReplicationSystem",
    "AlwaysReplicateSystem",
    "OnChainTraceSystem",
    "OnChainReadTraceSystem",
    "StorageManagerContract",
    "DataConsumerContract",
    "DecisionAlgorithm",
    "MemorylessAlgorithm",
    "MemorizingAlgorithm",
    "AdaptiveKAlgorithm",
    "OfflineOptimalAlgorithm",
    "StaticAlgorithm",
]
