"""The GRuB control plane, running on the trusted data owner.

Three components (Section 3.2 of the paper):

* :class:`WorkloadMonitor` — federates the trace of data updates (which the DO
  observes locally) with the trace of on-chain reads, which it fetches from
  the blockchain's natively logged contract-call history through the DO's own
  full node.  Crucially the read trace is *not* obtained from the untrusted
  SP, which would be incentivised to under-report reads to keep records off
  chain (and keep charging for cloud reads).
* the algorithm executor — one of the :mod:`repro.core.decision` algorithms,
  run over each epoch's federated trace.
* :class:`DecisionActuator` — turns decision changes into replication-state
  transitions stored as the per-record auxiliary state (the key's R/NR
  prefix), which the data plane materialises in the next epoch update.

An optional eviction policy (used by the BtcRelay case study) demotes
replicated records that have not been read for a configurable number of
epochs, bounding the amount of contract storage the feed occupies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.common.types import Operation, OperationKind, ReplicationState
from repro.core.storage_manager import CallHistoryCursor, StorageManagerContract


@dataclass
class WorkloadMonitor:
    """Collects the per-epoch trace of writes (local) and reads (from chain).

    The federated trace preserves the interleaving of reads and writes: each
    locally observed write is stamped with the position of the on-chain call
    history at the moment it was produced, so the monitor can merge the two
    streams back into the order the feed actually experienced.  Losing that
    interleaving would systematically overstate the number of *consecutive*
    reads, which is exactly the quantity the memoryless algorithm thresholds
    on.

    The on-chain read trace is consumed through a registered
    :class:`~repro.core.storage_manager.CallHistoryCursor` — an in-place view
    that never copies a history suffix — and registering it is what lets the
    contract compact consumed history each epoch.
    """

    storage_manager: StorageManagerContract
    _local_writes: List[tuple] = field(default_factory=list)
    observed_reads: int = 0
    observed_writes: int = 0
    _cursor: Optional[CallHistoryCursor] = None
    #: Reusable READ operations keyed by data key.  The monitor materialises
    #: one :class:`Operation` per observed gGet; hot keys are read thousands
    #: of times and the operation object is immutable (the algorithms consult
    #: only ``kind``/``key``), so one instance per key serves the whole run.
    _read_ops: Dict[str, Operation] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._cursor = self.storage_manager.open_history_cursor()

    def record_local_write(self, operation: Operation) -> None:
        """Register a write the DO produced locally during the current epoch."""
        position = self.storage_manager.history_end
        self._local_writes.append((position, operation))
        self.observed_writes += 1

    def fetch_chain_reads(self) -> List[tuple]:
        """Pull new gGet calls from the DO's full node via the cursor view.

        Returns ``(position, Operation)`` pairs where ``position`` is the
        call's absolute index in the chain's native invocation log.
        """
        read_ops = self._read_ops
        reads = []
        for position, call in self._cursor.drain():
            operation = read_ops.get(call.key)
            if operation is None:
                operation = read_ops[call.key] = Operation(
                    kind=OperationKind.READ, key=call.key
                )
            reads.append((position, operation))
        self.observed_reads += len(reads)
        return reads

    def federate_epoch_trace(self) -> List[Operation]:
        """Merge this epoch's local writes and on-chain reads in feed order."""
        reads = self.fetch_chain_reads()
        writes = self._local_writes
        self._local_writes = []
        merged: List[Operation] = []
        read_index = 0
        for position, write in writes:
            while read_index < len(reads) and reads[read_index][0] < position:
                merged.append(reads[read_index][1])
                read_index += 1
            merged.append(write)
        merged.extend(op for _, op in reads[read_index:])
        return merged


@dataclass
class DecisionActuator:
    """Tracks decision changes and turns them into actionable transitions."""

    #: keys that must change state in the next epoch update, with the target state.
    pending_transitions: Dict[str, ReplicationState] = field(default_factory=dict)
    #: epoch index of the most recent read per replicated key (for eviction).
    last_read_epoch: Dict[str, int] = field(default_factory=dict)
    replications: int = 0
    evictions: int = 0

    def apply_decisions(self, decisions: Iterable[Decision]) -> None:
        for decision in decisions:
            self.pending_transitions[decision.key] = decision.state
            if decision.state is ReplicationState.REPLICATED:
                self.replications += 1
            else:
                self.evictions += 1

    def note_reads(self, operations: Iterable[Operation], epoch: int) -> None:
        for op in operations:
            if op.is_read:
                self.last_read_epoch[op.key] = epoch

    def evict_stale(
        self,
        replicated_keys: Iterable[str],
        current_epoch: int,
        max_idle_epochs: int,
    ) -> List[str]:
        """Demote replicated keys that have not been read recently."""
        evicted: List[str] = []
        for key in replicated_keys:
            last = self.last_read_epoch.get(key, -1)
            if current_epoch - last >= max_idle_epochs:
                self.pending_transitions[key] = ReplicationState.NOT_REPLICATED
                self.evictions += 1
                evicted.append(key)
        return evicted

    def drain_transitions(self) -> Dict[str, ReplicationState]:
        """Hand the accumulated transitions to the data plane and clear them."""
        transitions, self.pending_transitions = self.pending_transitions, {}
        return transitions


@dataclass
class ControlPlane:
    """Monitor → algorithm → actuator pipeline.

    In the default (per-epoch) mode the algorithm runs once per epoch over the
    federated trace.  In *continuous* mode the DO feeds every operation to the
    algorithm as soon as it observes it — writes immediately (they are local)
    and reads as soon as they appear in the chain's call history — so the
    replication decision for a key can flip mid-epoch and be actuated by the
    SP's very next ``deliver`` (the paper's deliver-time ``replicate`` flag).
    The epoch boundary still governs when the DO's ``update`` transaction is
    sent.
    """

    monitor: WorkloadMonitor
    algorithm: DecisionAlgorithm
    actuator: DecisionActuator = field(default_factory=DecisionActuator)
    evict_unused_after_epochs: Optional[int] = None
    continuous: bool = False
    epochs_run: int = 0

    def record_local_write(self, operation: Operation) -> None:
        self.monitor.record_local_write(operation)
        if self.continuous:
            decisions = self.algorithm.observe([operation])
            self.actuator.apply_decisions(decisions)

    def observe_chain_reads(self) -> None:
        """Continuous mode: pull and process any new on-chain reads right away."""
        if not self.continuous:
            return
        reads = [op for _, op in self.monitor.fetch_chain_reads()]
        if not reads:
            return
        self.actuator.note_reads(reads, self.epochs_run)
        decisions = self.algorithm.observe(reads)
        self.actuator.apply_decisions(decisions)

    def run_epoch(self, replicated_keys: Iterable[str]) -> Dict[str, ReplicationState]:
        """Execute one control-plane cycle and return the state transitions."""
        if self.continuous:
            self.observe_chain_reads()
            # Writes were observed as they were buffered; drop the epoch trace
            # so the next epoch starts clean.
            self.monitor.federate_epoch_trace()
        else:
            trace = self.monitor.federate_epoch_trace()
            self.actuator.note_reads(trace, self.epochs_run)
            decisions = self.algorithm.observe(trace)
            self.actuator.apply_decisions(decisions)
        if self.evict_unused_after_epochs is not None:
            self.actuator.evict_stale(
                replicated_keys, self.epochs_run, self.evict_unused_after_epochs
            )
        self.epochs_run += 1
        return self.actuator.drain_transitions()

    def decision_for(self, key: str) -> ReplicationState:
        """Current decision for ``key`` (consulted by the data plane mid-epoch)."""
        return self.algorithm.state_of(key)
