"""Composable ASGI-style middleware for the gateway's live front door.

A request travels through a stack of middleware before it reaches the epoch
queue: each layer either passes it down (possibly annotating it), or
short-circuits with a rejection response that never touches the scheduler.
The shape is deliberately the web-framework one — ``await call_next(request)``
— so layers compose in declaration order and each sees exactly the responses
of the layers below it:

    stack = build_stack(
        [AuthTokenMiddleware(tokens),
         SecurityHeadersMiddleware(),
         RateLimitMiddleware(quotas),
         RequestMetricsMiddleware(obs)],
        endpoint,
    )

Order matters and the default order is security-first: authentication before
anything spends budget, rate limiting before the queue (a rejected request
must not consume an epoch slot), metrics innermost so latency measurements
cover queueing and settlement but not the rejection fast-path of the layers
above it.

Determinism: middleware decisions depend only on the request sequence and the
epoch-boundary refill schedule, never on wall-clock time — the same seeded
client replayed against the same fleet makes identical admission decisions,
which is what keeps a live run fingerprint-identical to its batch twin.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Awaitable,
    Callable,
    Dict,
    Mapping,
    Optional,
    Sequence,
)

from repro.common.types import Operation, Value
from repro.obs import Observability

#: The innermost handler type: takes the request to the epoch queue and
#: resolves when its epoch settles (or immediately, for a rejection).
Handler = Callable[["Request"], Awaitable["Response"]]

#: Response status values.
STATUS_SETTLED = "settled"
STATUS_REJECTED = "rejected"
STATUS_CANCELLED = "cancelled"

#: Rejection reasons the stock middleware emits.
REJECT_UNAUTHORIZED = "unauthorized"
REJECT_RATE_LIMITED = "rate_limited"
REJECT_UNKNOWN_TENANT = "unknown_tenant"
REJECT_DOOR_CLOSED = "door_closed"


@dataclass
class Request:
    """One live request: a tenant's operation plus its transport envelope.

    ``not_before_epoch`` is the request's *eligibility*: the earliest epoch
    boundary it may join.  It is the determinism lever — a seeded client
    stamps eligibilities instead of sleeping, so the same request sequence
    lands on the same epochs in every execution mode and every replay.
    """

    tenant: str
    operation: Operation
    token: Optional[str] = None
    headers: Dict[str, str] = field(default_factory=dict)
    not_before_epoch: int = 0

    @staticmethod
    def read(
        tenant: str,
        key: str,
        *,
        token: Optional[str] = None,
        size_bytes: int = 32,
        sequence: int = 0,
        not_before_epoch: int = 0,
    ) -> "Request":
        """A consumer read of one key."""
        return Request(
            tenant=tenant,
            operation=Operation.read(key, size_bytes=size_bytes, sequence=sequence),
            token=token,
            not_before_epoch=not_before_epoch,
        )

    @staticmethod
    def write(
        tenant: str,
        key: str,
        value: Value,
        *,
        token: Optional[str] = None,
        sequence: int = 0,
        not_before_epoch: int = 0,
    ) -> "Request":
        """A data-owner write of one key."""
        return Request(
            tenant=tenant,
            operation=Operation.write(key, value, sequence=sequence),
            token=token,
            not_before_epoch=not_before_epoch,
        )


@dataclass
class Response:
    """What a request's future resolves with.

    A settled response carries the request's epoch and its gas attribution:
    the even share of the epoch's per-feed gas bill across the operations
    that executed in it (the same batched-cost split the router applies to
    settlement transactions).  ``deferred_epochs`` counts how many boundaries
    the request sat planned-but-deferred under its tenant's quota before it
    finally executed.
    """

    status: str
    tenant: str
    epoch: Optional[int] = None
    gas: int = 0
    deferred_epochs: int = 0
    reason: Optional[str] = None
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_SETTLED

    @staticmethod
    def rejected(tenant: str, reason: str) -> "Response":
        return Response(status=STATUS_REJECTED, tenant=tenant, reason=reason)


def build_stack(middleware: Sequence["Middleware"], endpoint: Handler) -> Handler:
    """Compose middleware (outermost first) around the endpoint handler."""
    handler = endpoint
    for layer in reversed(middleware):
        handler = _bind(layer, handler)
    return handler


def _bind(layer: "Middleware", call_next: Handler) -> Handler:
    async def bound(request: Request) -> Response:
        return await layer(request, call_next)

    return bound


class Middleware:
    """Base middleware: pass-through.  Subclasses override ``__call__``.

    A middleware that needs the epoch clock (rate-limit refill, say)
    overrides ``on_epoch_settled`` — the front door invokes it once per
    settled epoch boundary, for every layer in its stack.
    """

    async def __call__(self, request: Request, call_next: Handler) -> Response:
        return await call_next(request)

    def on_epoch_settled(self, epoch: int) -> None:  # pragma: no cover - hook
        """Epoch-boundary notification (deterministic clock for layers)."""


class AuthTokenMiddleware(Middleware):
    """Bearer-token authentication, one token per tenant.

    Rejects a request whose token does not match its tenant's registered
    token — before anything below it spends budget on the request.  Tenants
    without a registered token cannot authenticate at all (deny by default).
    """

    def __init__(self, tokens: Mapping[str, str]) -> None:
        self._tokens = dict(tokens)

    async def __call__(self, request: Request, call_next: Handler) -> Response:
        expected = self._tokens.get(request.tenant)
        if expected is None or request.token != expected:
            return Response.rejected(request.tenant, REJECT_UNAUTHORIZED)
        return await call_next(request)


class SecurityHeadersMiddleware(Middleware):
    """Stamp the standard security headers on every response.

    The usual reverse-proxy hygiene set — the response is data about verified
    chain state and must never be sniffed, framed, or cached by an
    intermediary.  Applied to rejections too: error responses leak through
    caches just as happily as successes.
    """

    HEADERS: Mapping[str, str] = {
        "x-content-type-options": "nosniff",
        "x-frame-options": "DENY",
        "cache-control": "no-store",
        "strict-transport-security": "max-age=63072000; includeSubDomains",
    }

    async def __call__(self, request: Request, call_next: Handler) -> Response:
        response = await call_next(request)
        for name, value in self.HEADERS.items():
            response.headers.setdefault(name, value)
        return response


class RateLimitMiddleware(Middleware):
    """Per-tenant token buckets, refilled by the epoch clock.

    Delegates the *rate* to the existing quota machinery: a tenant's refill
    is its :class:`~repro.gateway.registry.FeedSpec` ``max_ops_per_epoch``
    (the same number the scheduler's deferral quota enforces per epoch), and
    the bucket holds ``burst_epochs`` worth of it.  A tenant with no op quota
    is unlimited — exactly as it is inside the gateway.

    Buckets refill at **epoch boundaries**, not on wall time: every settled
    epoch adds one epoch's quota (gap epochs included, since an idle fleet
    fast-forwards).  The limiter therefore admits the same prefix of any
    request sequence on every replay — over-quota traffic is rejected at the
    door instead of growing the epoch queue without bound, while the
    scheduler's own per-epoch deferral keeps smoothing what was admitted.
    """

    def __init__(
        self,
        quotas: Mapping[str, Optional[int]],
        *,
        burst_epochs: int = 2,
    ) -> None:
        if burst_epochs <= 0:
            raise ValueError("burst_epochs must be positive")
        self._rates: Dict[str, Optional[int]] = dict(quotas)
        self._capacity: Dict[str, int] = {
            tenant: rate * burst_epochs
            for tenant, rate in self._rates.items()
            if rate is not None
        }
        self._tokens: Dict[str, int] = dict(self._capacity)
        self._last_epoch: Optional[int] = None

    async def __call__(self, request: Request, call_next: Handler) -> Response:
        rate = self._rates.get(request.tenant)
        if rate is not None:
            tokens = self._tokens.get(request.tenant, 0)
            if tokens <= 0:
                return Response.rejected(request.tenant, REJECT_RATE_LIMITED)
            self._tokens[request.tenant] = tokens - 1
        return await call_next(request)

    def on_epoch_settled(self, epoch: int) -> None:
        elapsed = 1 if self._last_epoch is None else max(0, epoch - self._last_epoch)
        self._last_epoch = epoch
        if not elapsed:
            return
        for tenant, capacity in self._capacity.items():
            rate = self._rates[tenant]
            assert rate is not None  # capacity only exists for rated tenants
            self._tokens[tenant] = min(
                capacity, self._tokens.get(tenant, 0) + rate * elapsed
            )


class RequestMetricsMiddleware(Middleware):
    """Feed the obs plane: per-tenant request counts and end-to-end latency.

    Innermost by convention, so the latency histogram measures admission →
    settlement (queueing included) rather than the rejection fast path of
    the layers above.  Purely observational — the obs plane must never
    influence fingerprints, so this layer reads the clock and increments
    instruments, nothing else.
    """

    #: End-to-end request latency, labelled by tenant and outcome.
    HISTOGRAM = "request_latency_seconds"
    #: Requests through the stack, labelled by tenant and outcome.
    COUNTER = "frontdoor_requests_total"

    def __init__(self, obs: Observability) -> None:
        self.obs = obs

    async def __call__(self, request: Request, call_next: Handler) -> Response:
        started = time.perf_counter()
        response = await call_next(request)
        elapsed = time.perf_counter() - started
        self.obs.histogram(
            self.HISTOGRAM, tenant=request.tenant, status=response.status
        ).observe(elapsed)
        self.obs.counter(
            self.COUNTER, tenant=request.tenant, status=response.status
        ).inc()
        return response
