"""The gateway's live front door: asyncio requests in, settled epochs out.

:class:`FrontDoor` is the canonical :class:`~repro.gateway.scheduler.RequestSource`:
clients ``await door.submit(request)`` on the event loop, the epoch scheduler
runs on a dedicated thread and drains the door at every epoch boundary, and
each request's future resolves when its epoch settles — carrying the settled
epoch, the request's even share of its feed's epoch gas bill, and how many
boundaries it sat deferred under its tenant's quota.

The two halves meet through a condition variable, not a wall clock:

* loop thread — ``submit`` runs the middleware stack; an admitted request
  joins the pending list (FIFO, stamped with a global admission sequence)
  and notifies the scheduler if it is blocked idle.
* scheduler thread — ``poll`` takes every *eligible* pending request
  (``not_before_epoch <= epoch``) at each boundary; ``settled`` pops the
  executed head of each feed's in-flight queue and resolves the futures via
  ``loop.call_soon_threadsafe``.

Determinism: epoch membership is driven purely by admission order and
``not_before_epoch`` eligibility.  A client that stamps its whole request
sequence before the fleet drains it (the seeded benchmark client, tests)
produces **bit-identical** fingerprints, gas bills and chain state to the
equivalent batch run — in serial, thread and process modes alike.  Requests
racing the epoch clock in real time are serviced correctly, but *which*
boundary catches them is scheduling weather, not physics, and is the one
thing a replay cannot pin.

Observability: the run's span tree grows a ``frontdoor`` root above
``run → epoch``, each request gets a detached ``frontdoor.request`` span
(admission → resolution) adopted under the root in admission order, and
end-to-end latency lands in the ``request_latency_seconds`` histograms via
:class:`~repro.frontdoor.middleware.RequestMetricsMiddleware`.  The door
additionally keeps its own raw latency samples so p50/p95/p99 reporting
works even with the obs plane disabled.
"""

from __future__ import annotations

import asyncio
import math
import threading
import time
from collections import deque
from contextlib import asynccontextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.common.errors import ConfigurationError
from repro.common.types import Operation
from repro.gateway.metrics import FleetTelemetry
from repro.gateway.scheduler import EpochScheduler, RequestSource
from repro.obs import REPORT_PERCENTILES
from repro.frontdoor.middleware import (
    Handler,
    Middleware,
    Request,
    RequestMetricsMiddleware,
    Response,
    SecurityHeadersMiddleware,
    RateLimitMiddleware,
    AuthTokenMiddleware,
    STATUS_CANCELLED,
    STATUS_REJECTED,
    STATUS_SETTLED,
    REJECT_DOOR_CLOSED,
    REJECT_UNKNOWN_TENANT,
    build_stack,
)

__all__ = [
    "FrontDoor",
    "FrontDoorTelemetry",
    "TenantRequestStats",
    "latency_percentile",
    "latency_percentiles",
]


def latency_percentile(samples: Iterable[float], q: float) -> Optional[float]:
    """Nearest-rank percentile of raw latency samples.

    Same definition as :meth:`repro.obs.metrics.Histogram.percentile` — the
    smallest sample with at least ``q``% of samples at or below it — so the
    door's report agrees with the obs plane's to the last ulp.  ``q`` in
    (0, 100]; ``None`` when there are no samples.
    """
    if not 0.0 < q <= 100.0:
        raise ConfigurationError("percentile q must be in (0, 100]")
    ordered = sorted(samples)
    if not ordered:
        return None
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[max(rank, 1) - 1]


def latency_percentiles(
    samples: Iterable[float], qs: Sequence[float] = REPORT_PERCENTILES
) -> Dict[str, Optional[float]]:
    """The ``{"p50": ..., "p95": ..., "p99": ...}`` dict reports use."""
    ordered = sorted(samples)
    return {f"p{q:g}": latency_percentile(ordered, q) for q in qs}


@dataclass
class TenantRequestStats:
    """One tenant's front-door counters (all epoch-driven, all fingerprinted)."""

    accepted: int = 0
    settled: int = 0
    cancelled: int = 0
    deferrals: int = 0
    gas_attributed: int = 0
    rejected: Dict[str, int] = field(default_factory=dict)

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    def fingerprint(self) -> Dict[str, Any]:
        return {
            "accepted": self.accepted,
            "settled": self.settled,
            "cancelled": self.cancelled,
            "deferrals": self.deferrals,
            "gas_attributed": self.gas_attributed,
            "rejected": dict(sorted(self.rejected.items())),
        }


@dataclass
class FrontDoorTelemetry:
    """Fleet-wide front-door counters, one row per tenant.

    Everything here is a function of the admitted request sequence and the
    epoch clock — never of wall time — so the fingerprint is replayable and
    the live-vs-batch equivalence suite can assert on it.
    """

    tenants: Dict[str, TenantRequestStats] = field(default_factory=dict)

    def tenant(self, tenant: str) -> TenantRequestStats:
        stats = self.tenants.get(tenant)
        if stats is None:
            stats = self.tenants[tenant] = TenantRequestStats()
        return stats

    @property
    def accepted(self) -> int:
        return sum(stats.accepted for stats in self.tenants.values())

    @property
    def rejected(self) -> int:
        return sum(stats.rejected_total for stats in self.tenants.values())

    @property
    def settled(self) -> int:
        return sum(stats.settled for stats in self.tenants.values())

    def fingerprint(self) -> Dict[str, Any]:
        return {
            tenant: self.tenants[tenant].fingerprint()
            for tenant in sorted(self.tenants)
        }


@dataclass
class _Pending:
    """One admitted request waiting for (or riding through) the epoch engine."""

    sequence: int
    request: Request
    future: "asyncio.Future[Response]"
    admitted_at: float
    span: Optional[Any] = None
    deferred_epochs: int = 0


class FrontDoor(RequestSource):
    """Live request layer in front of an :class:`EpochScheduler`.

    ``middleware`` defaults to the canonical stack — auth (when ``tokens``
    given), security headers, per-tenant rate limiting fed by the fleet's
    ``FeedSpec`` op quotas, request metrics — composed in that order around
    the epoch-queue endpoint.  Pass an explicit sequence (possibly empty) to
    override; layers with an ``on_epoch_settled`` hook get the epoch clock
    either way.
    """

    def __init__(
        self,
        scheduler: EpochScheduler,
        *,
        tokens: Optional[Mapping[str, str]] = None,
        middleware: Optional[Sequence[Middleware]] = None,
        burst_epochs: int = 2,
        held: bool = False,
    ) -> None:
        self.scheduler = scheduler
        self.obs = scheduler.obs
        self.telemetry = FrontDoorTelemetry()
        self._tenants = frozenset(scheduler.registry.feed_ids)
        #: Tenants evicted mid-run: their queued requests were cancelled and
        #: new submissions are turned away at admission.
        self._departed: set = set()
        if middleware is None:
            quotas = {
                feed_id: scheduler.registry.get(feed_id).spec.max_ops_per_epoch
                for feed_id in self._tenants
            }
            middleware = [
                *(
                    [AuthTokenMiddleware(tokens)]
                    if tokens is not None
                    else []
                ),
                SecurityHeadersMiddleware(),
                RateLimitMiddleware(quotas, burst_epochs=burst_epochs),
                RequestMetricsMiddleware(self.obs),
            ]
        self.middleware: Tuple[Middleware, ...] = tuple(middleware)
        self._app: Handler = build_stack(self.middleware, self._enqueue)

        self._cond = threading.Condition()
        #: Admitted, not yet taken by a boundary (admission order).
        self._pending: List[_Pending] = []
        #: Taken by a boundary, riding the epoch engine (FIFO per feed).
        self._inflight: Dict[str, Deque[_Pending]] = {}
        #: Head-of-queue operations that came from the pre-seeded batch
        #: ``workloads`` map rather than live requests; they execute first
        #: and own no futures.
        self._seeded: Dict[str, int] = {}
        self._sequence = 0
        self._closed = False
        #: While held, boundaries take nothing: admissions accumulate in the
        #: pending list and the idle scheduler blocks in ``poll``.  This is
        #: the determinism latch — a seeded client admits its whole request
        #: sequence, then :meth:`release`\ s, so epoch membership depends
        #: only on the sequence (and eligibility stamps), never on how
        #: admission raced the epoch clock.
        self._held = held
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None
        self._fleet: Optional[FleetTelemetry] = None
        self._latencies: List[float] = []
        self._finished_spans: List[Any] = []

    # -- client side (event loop) ---------------------------------------------

    async def submit(self, request: Request) -> Response:
        """Run one request through the middleware stack and the fleet.

        Resolves when the request's epoch settles (or immediately on
        rejection).  Must be awaited inside :meth:`serving`.
        """
        response = await self._app(request)
        if response.status == STATUS_REJECTED:
            stats = self.telemetry.tenant(request.tenant)
            reason = response.reason or "rejected"
            stats.rejected[reason] = stats.rejected.get(reason, 0) + 1
        return response

    async def _enqueue(self, request: Request) -> Response:
        """The stack's endpoint: admit the request into the epoch queue and
        await its settlement future."""
        if request.tenant not in self._tenants or request.tenant in self._departed:
            return Response.rejected(request.tenant, REJECT_UNKNOWN_TENANT)
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Response]" = loop.create_future()
        tracer = self.obs.tracer
        with self._cond:
            if self._closed:
                return Response.rejected(request.tenant, REJECT_DOOR_CLOSED)
            self._sequence += 1
            pending = _Pending(
                sequence=self._sequence,
                request=request,
                future=future,
                admitted_at=time.perf_counter(),
                span=tracer.detached(
                    "frontdoor.request",
                    tenant=request.tenant,
                    kind=request.operation.kind.name.lower(),
                ),
            )
            self._pending.append(pending)
            self.telemetry.tenant(request.tenant).accepted += 1
            self._cond.notify_all()
        return await future

    def hold(self) -> None:
        """Stop boundaries from taking pending requests (see ``held``)."""
        with self._cond:
            self._held = True

    def release(self) -> None:
        """Let boundaries take pending requests again.

        The deterministic client recipe: create the submit tasks, yield the
        loop once (``await asyncio.sleep(0)`` — every task runs straight to
        admission, there is no suspension point before the settlement
        future), then ``release()``.  Everything lands on the next boundary
        in admission order.
        """
        with self._cond:
            self._held = False
            self._cond.notify_all()

    def close(self) -> None:
        """Close the door: new submissions are rejected, the scheduler runs
        the fleet dry and the run ends.  Releases a held door — whatever was
        already admitted still executes.  Idempotent, thread-safe."""
        with self._cond:
            self._closed = True
            self._held = False
            self._cond.notify_all()

    @asynccontextmanager
    async def serving(
        self, workloads: Optional[Mapping[str, Sequence[Operation]]] = None
    ):
        """Serve the fleet for the duration of the ``async with`` block.

        Starts the scheduler on a dedicated thread (every registered feed is
        live from epoch 0); the optional ``workloads`` map pre-seeds feed
        queues exactly as a batch run would, ahead of any live request.  On
        exit the door closes, the run is drained to completion, and
        :attr:`fleet` carries the run's telemetry.  Scheduler errors re-raise
        here, after every outstanding future has been failed with them.
        """
        if self._thread is not None:
            raise ConfigurationError("front door is already serving")
        self._loop = asyncio.get_running_loop()
        self._seeded = {
            feed_id: len(operations)
            for feed_id, operations in (workloads or {}).items()
        }
        self._thread = threading.Thread(
            target=self._drive, args=(workloads,), name="frontdoor-gateway"
        )
        self._thread.start()
        try:
            yield self
        finally:
            self.close()
            await asyncio.get_running_loop().run_in_executor(
                None, self._thread.join
            )
            if self._error is not None:
                raise self._error

    @property
    def fleet(self) -> FleetTelemetry:
        """The finished run's fleet telemetry (after :meth:`serving` exits)."""
        if self._fleet is None:
            raise ConfigurationError("the front door has not finished a run")
        return self._fleet

    @property
    def latencies(self) -> List[float]:
        """Raw end-to-end latency samples (seconds), resolution order."""
        return list(self._latencies)

    def percentiles(self) -> Dict[str, Optional[float]]:
        """End-to-end p50/p95/p99 over every resolved request."""
        return latency_percentiles(self._latencies)

    # -- gateway side (scheduler thread) --------------------------------------

    def _drive(self, workloads: Optional[Mapping[str, Sequence[Operation]]]) -> None:
        """Thread body: run the fleet under the ``frontdoor`` root span."""
        tracer = self.obs.tracer
        try:
            with self.obs.span(
                "frontdoor", mode=self.scheduler.execution_mode
            ) as root:
                fleet = self.scheduler.run(workloads, source=self)
                # Adopt the per-request spans under the root in admission
                # order — deterministic whatever the settlement interleaving.
                for span in sorted(
                    self._finished_spans, key=lambda item: item[0]
                ):
                    tracer.adopt(root, span[1])
            self._fleet = fleet
        except BaseException as exc:  # noqa: BLE001 - relayed to the loop
            self._error = exc
            self._fail_outstanding(exc)

    def poll(
        self, epoch: int, *, wait: bool
    ) -> Mapping[str, Sequence[Operation]]:
        """Take every eligible pending request for this boundary.

        Blocks (``wait=True``, the idle gateway) until a request arrives or
        the door closes; returns immediately when the fleet has queued work,
        or when everything pending is scheduled for a later epoch — the run
        loop fast-forwards to it via :meth:`next_epoch`.

        A held door blocks *unconditionally* — even a scheduler with seeded
        queues or pending churn parks at its first boundary until
        :meth:`release`.  That is the whole point of the latch: nothing about
        the run (not even batch work) advances until the client has stamped
        its request sequence.
        """
        with self._cond:
            while not self._closed and self._held:
                self._cond.wait()
            if wait:
                while not self._closed and not self._pending:
                    self._cond.wait()
            eligible: List[_Pending] = []
            kept: List[_Pending] = []
            for pending in self._pending:
                if pending.request.not_before_epoch <= epoch:
                    eligible.append(pending)
                else:
                    kept.append(pending)
            self._pending = kept
            arrivals: Dict[str, List[Operation]] = {}
            for pending in eligible:
                feed_id = pending.request.tenant
                self._inflight.setdefault(feed_id, deque()).append(pending)
                arrivals.setdefault(feed_id, []).append(pending.request.operation)
            return arrivals

    @property
    def exhausted(self) -> bool:
        with self._cond:
            return self._closed and not self._pending

    def next_epoch(self, after: int) -> Optional[int]:
        with self._cond:
            if self._held or not self._pending:
                return None
            return min(
                pending.request.not_before_epoch for pending in self._pending
            )

    def settled(
        self, epoch: int, feed_id: str, *, executed: int, deferred: int, gas: int
    ) -> None:
        """Resolve the executed head of one feed's in-flight queue.

        The scheduler executes strictly from the queue head, so the first
        ``executed`` in-flight entries (after any pre-seeded batch
        operations) are exactly the requests that ran this epoch.  The
        epoch's per-feed gas bill splits evenly across all ``executed``
        operations — the batched-cost idiom the router already applies —
        and each request carries its share; a remainder spreads one unit at
        a time from the front, so the split is exact and deterministic.
        Deferred head-of-queue requests get their deferral stamped.
        """
        with self._cond:
            for layer in self.middleware:
                layer.on_epoch_settled(epoch)
            queue = self._inflight.get(feed_id)
            seeded = self._seeded.get(feed_id, 0)
            consumed_seeded = min(seeded, executed)
            if consumed_seeded:
                self._seeded[feed_id] = seeded - consumed_seeded
            live_executed = executed - consumed_seeded
            share, remainder = (
                divmod(gas, executed) if executed else (0, 0)
            )
            resolved: List[Tuple[_Pending, Response]] = []
            for index in range(live_executed):
                if not queue:
                    break
                pending = queue.popleft()
                # Seeded operations occupy gas shares [0, consumed_seeded).
                position = consumed_seeded + index
                attributed = share + (1 if position < remainder else 0)
                stats = self.telemetry.tenant(feed_id)
                stats.settled += 1
                stats.gas_attributed += attributed
                resolved.append(
                    (
                        pending,
                        Response(
                            status=STATUS_SETTLED,
                            tenant=feed_id,
                            epoch=epoch,
                            gas=attributed,
                            deferred_epochs=pending.deferred_epochs,
                        ),
                    )
                )
            # The next `deferred` head-of-queue operations were planned but
            # pushed to the next epoch by the tenant's quota; stamp the live
            # ones (seeded leftovers defer silently).
            seeded_left = self._seeded.get(feed_id, 0)
            live_deferred = max(0, deferred - seeded_left)
            if queue is not None:
                for pending in list(queue)[:live_deferred]:
                    pending.deferred_epochs += 1
                    self.telemetry.tenant(feed_id).deferrals += 1
        for pending, response in resolved:
            self._resolve(pending, response)

    def evicted(self, epoch: int, feed_id: str) -> None:
        """The gateway evicted a tenant mid-run: cancel its queued requests.

        Fires from the churn boundary, before the epoch's poll.  Everything
        the tenant had in flight (its operations were dropped from the feed
        queue with the eviction) or still pending resolves as cancelled *now*
        — a client awaiting those futures must not deadlock the run by
        keeping the door open for responses that can never settle.  Later
        submissions for the tenant are rejected at admission.
        """
        with self._cond:
            self._departed.add(feed_id)
            leftovers = [
                pending
                for pending in self._pending
                if pending.request.tenant == feed_id
            ]
            self._pending = [
                pending
                for pending in self._pending
                if pending.request.tenant != feed_id
            ]
            queue = self._inflight.pop(feed_id, None)
            if queue is not None:
                leftovers.extend(queue)
        for pending in sorted(leftovers, key=lambda item: item.sequence):
            stats = self.telemetry.tenant(feed_id)
            stats.cancelled += 1
            self._resolve(
                pending,
                Response(
                    status=STATUS_CANCELLED,
                    tenant=feed_id,
                    deferred_epochs=pending.deferred_epochs,
                    reason=f"tenant evicted at epoch {epoch}",
                ),
            )

    def run_finished(self, fleet: FleetTelemetry) -> None:
        """Run over: cancel whatever never executed so no future is left
        hanging (a safety net — departures already cancel eagerly via
        :meth:`evicted`)."""
        with self._cond:
            leftovers = list(self._pending)
            self._pending = []
            for queue in self._inflight.values():
                leftovers.extend(queue)
                queue.clear()
        for pending in sorted(leftovers, key=lambda item: item.sequence):
            stats = self.telemetry.tenant(pending.request.tenant)
            stats.cancelled += 1
            self._resolve(
                pending,
                Response(
                    status=STATUS_CANCELLED,
                    tenant=pending.request.tenant,
                    deferred_epochs=pending.deferred_epochs,
                    reason="run finished before the request executed",
                ),
            )

    # -- resolution plumbing ---------------------------------------------------

    def _resolve(self, pending: _Pending, response: Response) -> None:
        """Resolve one request's future from the scheduler thread."""
        self._latencies.append(time.perf_counter() - pending.admitted_at)
        if pending.span is not None:
            pending.span.attrs["status"] = response.status
            self.obs.tracer.finish(pending.span)
            self._finished_spans.append((pending.sequence, pending.span))
        loop = self._loop
        if loop is None or loop.is_closed():  # pragma: no cover - shutdown race
            return
        loop.call_soon_threadsafe(self._set_result, pending.future, response)

    def _fail_outstanding(self, error: BaseException) -> None:
        """Scheduler crash: fail every unresolved future with the error."""
        with self._cond:
            leftovers = list(self._pending)
            self._pending = []
            for queue in self._inflight.values():
                leftovers.extend(queue)
                queue.clear()
        loop = self._loop
        if loop is None or loop.is_closed():  # pragma: no cover - shutdown race
            return
        for pending in leftovers:
            loop.call_soon_threadsafe(
                self._set_exception, pending.future, error
            )

    @staticmethod
    def _set_result(future: "asyncio.Future[Response]", response: Response) -> None:
        if not future.done():
            future.set_result(response)

    @staticmethod
    def _set_exception(
        future: "asyncio.Future[Response]", error: BaseException
    ) -> None:
        if not future.done():
            future.set_exception(error)
