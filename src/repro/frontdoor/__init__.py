"""Live asyncio front door for the fleet gateway.

Requests arrive on an event loop, flow through a composable middleware stack
(auth, security headers, per-tenant rate limiting backed by the ``FeedSpec``
quota machinery, request metrics), and are drained into the epoch engine at
boundaries; each request's future resolves when its epoch settles, carrying
the verified outcome and its share of the epoch's gas bill.  See
:mod:`repro.frontdoor.door` for the threading/determinism contract.
"""

from repro.frontdoor.door import (
    FrontDoor,
    FrontDoorTelemetry,
    TenantRequestStats,
    latency_percentile,
    latency_percentiles,
)
from repro.frontdoor.middleware import (
    AuthTokenMiddleware,
    Handler,
    Middleware,
    RateLimitMiddleware,
    REJECT_DOOR_CLOSED,
    REJECT_RATE_LIMITED,
    REJECT_UNAUTHORIZED,
    REJECT_UNKNOWN_TENANT,
    Request,
    RequestMetricsMiddleware,
    Response,
    SecurityHeadersMiddleware,
    STATUS_CANCELLED,
    STATUS_REJECTED,
    STATUS_SETTLED,
    build_stack,
)

__all__ = [
    "FrontDoor",
    "FrontDoorTelemetry",
    "TenantRequestStats",
    "latency_percentile",
    "latency_percentiles",
    "Request",
    "Response",
    "Middleware",
    "Handler",
    "build_stack",
    "AuthTokenMiddleware",
    "SecurityHeadersMiddleware",
    "RateLimitMiddleware",
    "RequestMetricsMiddleware",
    "STATUS_SETTLED",
    "STATUS_REJECTED",
    "STATUS_CANCELLED",
    "REJECT_UNAUTHORIZED",
    "REJECT_RATE_LIMITED",
    "REJECT_UNKNOWN_TENANT",
    "REJECT_DOOR_CLOSED",
]
